//! Block-row distributed **preconditioned** Conjugate Gradient over
//! simulated ranks (Listing 5 of the paper, in the Section 3.4 distributed
//! configuration).
//!
//! The preconditioner is block-Jacobi with **rank-local page blocks**
//! ([`LocalBlockJacobi`]): every diagonal block lives inside one rank's row
//! range, so applying `M⁻¹` needs no communication — the iteration adds one
//! coupled block solve per page and one extra allreduce (`ρ = ⟨z, g⟩`) to
//! the plain [`distributed_cg`](crate::cg::distributed_cg) structure.
//!
//! This loop is the *plain* reference implementation: the engine-based
//! [`distributed_resilient_pcg`](crate::resilient::distributed_resilient_pcg)
//! must be bitwise-identical to it in its fault-free runs (asserted in
//! `tests/resilience.rs`), which keeps the two code paths honest about
//! executing the same arithmetic in the same order.

use feir_sparse::{CsrMatrix, LocalBlockJacobi, SpmvBackend};

use crate::cg::{run_ranks, DistSolveResult, RankOutcome};
use crate::comm::{CommError, RankComm};
use crate::kernels;
use crate::partition::RankPartition;

/// Solves `A x = b` with block-Jacobi PCG distributed over `ranks` simulated
/// ranks; `page_doubles` is the preconditioner block size (and the page size
/// the resilient twin protects at).
///
/// # Panics
/// Panics if the matrix is not square or `b` has the wrong length.
pub fn distributed_pcg(
    a: &CsrMatrix,
    b: &[f64],
    ranks: usize,
    page_doubles: usize,
    tolerance: f64,
    max_iterations: usize,
) -> DistSolveResult {
    assert_eq!(a.rows(), a.cols(), "distributed PCG needs a square matrix");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let page_doubles = page_doubles.max(1);
    run_ranks(a, b, ranks, tolerance, move |ctx| {
        rank_pcg(
            a,
            b,
            ctx.comm,
            &ctx.partition,
            page_doubles,
            tolerance,
            max_iterations,
        )
    })
}

/// The per-rank PCG loop, backend-agnostic (same body on in-process channels
/// and on the socket mesh of the process transport).
pub(crate) fn rank_pcg(
    a: &CsrMatrix,
    b: &[f64],
    comm: RankComm,
    partition: &RankPartition,
    page_doubles: usize,
    tolerance: f64,
    max_iterations: usize,
) -> Result<RankOutcome, CommError> {
    let rank = comm.rank();
    let own = partition.range(rank);
    let local_n = own.len();
    // Rank-local factorization: on a real machine this is each rank's own
    // setup work, overlapping across ranks.
    let jacobi = LocalBlockJacobi::new(a, own.clone(), page_doubles, true)
        .expect("rank-local block-Jacobi construction failed");
    // Rank-local storage backend over the owned row block (see rank_cg).
    let op = SpmvBackend::select_rows(a, own.clone());

    let mut x = vec![0.0; local_n];
    let mut g: Vec<f64> = b[own.clone()].to_vec(); // g = b − A·0
    let mut z = vec![0.0; local_n];
    let mut d = vec![0.0; local_n];
    let mut q = vec![0.0; local_n];
    // Private full-length buffer for the halo exchange of d.
    let mut d_full = vec![0.0; a.cols()];

    let norm_b = kernels::global_rhs_norm(&comm, &b[own.clone()])?;
    let mut eps = comm.allreduce_sum(kernels::norm2_squared(&g))?;
    let mut rho_old = f64::INFINITY;
    let mut iterations = 0;
    let mut history = Vec::new();

    for t in 0..max_iterations {
        let rel = eps.max(0.0).sqrt() / norm_b;
        history.push(rel);
        if rel <= tolerance {
            break;
        }
        iterations = t + 1;
        let _it = feir_trace::span(feir_trace::Phase::Iteration);

        // z ⇐ M⁻¹ g: one coupled block solve per page, no communication.
        jacobi.apply(&g, &mut z);
        let rho = comm.allreduce_sum(kernels::dot(&z, &g))?;
        if kernels::is_breakdown(rho) {
            break;
        }
        let beta = kernels::beta_ratio(rho, rho_old);
        // d ⇐ z + β·d, then ship the halo of d.
        kernels::xpay(&z, beta, &mut d);
        d_full[own.clone()].copy_from_slice(&d);
        comm.exchange_halo(&mut d_full)?;

        // q ⇐ A·d over the owned rows, fused with the local ⟨d, q⟩ partial.
        let dq_local = {
            let _probe = feir_trace::span(feir_trace::Phase::Spmv);
            op.spmv_dot(a, &d_full, &mut q)
        };
        let dq = comm.allreduce_sum(dq_local)?;
        if kernels::is_breakdown(dq) {
            break;
        }
        let alpha = rho / dq;
        kernels::axpy(alpha, &d, &mut x);
        // g ⇐ g − α·q fused with the local ‖g‖² partial of the next ε.
        rho_old = rho;
        eps = comm.allreduce_sum(kernels::axpy_norm2(-alpha, &q, &mut g))?;
    }
    let collectives = comm.collectives();
    Ok((rank, x, iterations, history, collectives))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::distributed_cg;
    use feir_sparse::generators::{anisotropic_2d, manufactured_rhs, poisson_2d};

    #[test]
    fn distributed_pcg_converges_and_matches_the_manufactured_solution() {
        let a = poisson_2d(12);
        let (x_true, b) = manufactured_rhs(&a, 5);
        for ranks in [1usize, 2, 3] {
            let result = distributed_pcg(&a, &b, ranks, 16, 1e-10, 10_000);
            assert!(result.converged(), "{ranks} ranks did not converge");
            for (u, v) in result.x.iter().zip(&x_true) {
                assert!((u - v).abs() < 1e-7, "{ranks} ranks: {u} vs {v}");
            }
        }
    }

    #[test]
    fn preconditioning_reduces_iterations_on_a_hard_problem() {
        let a = anisotropic_2d(24, 0.02);
        let (_, b) = manufactured_rhs(&a, 9);
        let plain = distributed_cg(&a, &b, 2, 1e-8, 50_000);
        let pre = distributed_pcg(&a, &b, 2, 64, 1e-8, 50_000);
        assert!(plain.converged() && pre.converged());
        assert!(
            pre.iterations < plain.iterations,
            "PCG ({}) should beat CG ({})",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn rank_count_is_clamped_and_history_recorded() {
        let a = poisson_2d(4);
        let (_, b) = manufactured_rhs(&a, 1);
        let result = distributed_pcg(&a, &b, 64, 8, 1e-12, 1_000);
        assert!(result.converged());
        assert_eq!(result.ranks, 16);
        assert_eq!(result.residual_history.len(), result.iterations + 1);
    }
}
