//! Distributed resilient CG: cross-rank FEIR/AFEIR recovery with live fault
//! injection (the paper's Section 3.4 scaling configuration).
//!
//! On the MPI+OmpSs machine of the paper a DUE is *contained to the rank that
//! owns the faulted page*: the other ranks keep computing, and the recovering
//! rank reconstructs the lost block with the exact forward interpolations of
//! Table 1. When the faulted block's matrix stencil crosses a rank boundary,
//! the off-diagonal contributions `A_ij · v_j` of the interpolation involve
//! values the recovering rank never owns — the iterate `x` in particular is
//! never exchanged by CG, so the recovering rank must *request* those entries
//! from its halo neighbours. This module implements that protocol on the
//! simulated substrate:
//!
//! * [`InjectionDriver`] attaches one live [`FaultInjector`] stream per rank
//!   to the per-rank registries of a [`RankDomains`], so errors arrive on
//!   every rank's private fault domain concurrently with the solve, and
//!   returns one [`InjectionReport`] per rank when stopped;
//! * [`DistResilientCg`] / [`distributed_resilient_cg`] run the block-row
//!   distributed CG under the full [`RecoveryPolicy`] matrix (trivial
//!   forward recovery, checkpoint/rollback, Lossy Restart, FEIR, AFEIR).
//!   Faults materialise at per-iteration scrub points (the page-granular
//!   analogue of SIGBUS-on-touch); forward-exact recovery then
//!   - reconstructs lost **direction** pages from the inverse matvec relation
//!     `A_RR d_R = q_R − Σ_{c∉R} A_Rc d_c` using the *retained halo snapshot*
//!     of `d` (fetching would be wrong: a neighbour may already have advanced
//!     its direction, while the snapshot is exactly the `d` that produced
//!     `q`),
//!   - reconstructs lost **iterate/residual** pages from
//!     `A_RR x_R = b_R − g_R − Σ_{c∉R} A_Rc x_c`, fetching the remote
//!     off-diagonal entries through the [`RecoveryMsg`](crate::comm::RecoveryMsg)
//!     request/reply round of [`RankComm::recovery_exchange`];
//!   - under **AFEIR** the reconstruction overlaps the neighbouring solver
//!     work on the PR 2 work-stealing pool (`rayon::join`): direction
//!     recovery runs beside the per-page direction update, and `q`/`g`
//!     recovery runs beside the partial dot-product / norm reductions whose
//!     skipped contributions are patched in before the allreduce;
//! * with **zero faults the solve is bitwise-identical to
//!   [`distributed_cg`](crate::cg::distributed_cg)**: the scrub points do no
//!   floating-point work, the fault flag is a separate scalar allreduce, and
//!   every kernel call and reduction happens in the same order on the same
//!   values.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

use feir_pagemem::{
    AccessOutcome, FaultInjector, InjectionPlan, InjectionReport, PageRegistry, VectorId,
};
use feir_recovery::checkpoint::{CheckpointStore, CheckpointTarget};
use feir_recovery::report::DistributedFaultReport;
use feir_recovery::RecoveryPolicy;
use feir_sparse::blocking::BlockPartition;
use feir_sparse::{vecops, CsrMatrix, DenseMatrix};

use crate::comm::{effective_ranks, HaloPlan, RankComm};
use crate::domains::RankDomains;
use crate::partition::RankPartition;

/// The four protected vectors of the distributed solve, in registration
/// order (their [`VectorId`]s are 0..=3 within each rank's registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtectedVector {
    /// The iterate `x`.
    X,
    /// The residual `g`.
    G,
    /// The search direction `d`.
    D,
    /// The matvec product `q = A·d`.
    Q,
}

impl ProtectedVector {
    /// The registry id of this vector inside any rank's fault domain.
    pub fn id(self) -> VectorId {
        VectorId(self as usize)
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ProtectedVector::X => "x",
            ProtectedVector::G => "g",
            ProtectedVector::D => "d",
            ProtectedVector::Q => "q",
        }
    }
}

/// Registry ids of the protected vectors, used by the per-rank solver loop.
mod ids {
    use feir_pagemem::VectorId;

    pub const X: VectorId = VectorId(0);
    pub const G: VectorId = VectorId(1);
    pub const D: VectorId = VectorId(2);
    pub const Q: VectorId = VectorId(3);
}

/// One deterministic fault scripted against a solve: at the top of
/// `iteration`, page `page` of `vector` in `rank`'s fault domain is poisoned.
///
/// Scripted faults complement the live (timing-based) [`InjectionDriver`]
/// streams with exactly reproducible experiments — the same fault always
/// lands at the same point of the iteration space, which is what the policy
/// comparison tests and benchmark snapshots need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Solver iteration at whose start the fault is injected.
    pub iteration: usize,
    /// Rank whose fault domain is hit.
    pub rank: usize,
    /// Target vector.
    pub vector: ProtectedVector,
    /// Page index within the rank-local vector.
    pub page: usize,
}

/// Configuration of a distributed resilient solve.
#[derive(Debug, Clone)]
pub struct DistResilienceConfig {
    /// The recovery policy applied on every rank.
    pub policy: RecoveryPolicy,
    /// Page size in doubles of the per-rank fault domains (512 = one 4 KiB
    /// page, the paper's value; tests use smaller pages so small matrices
    /// span several pages per rank).
    pub page_doubles: usize,
    /// Convergence tolerance on the relative residual.
    pub tolerance: f64,
    /// Iteration cap (counting re-done iterations after rollbacks/restarts).
    pub max_iterations: usize,
    /// Deterministic faults injected at fixed iterations (see
    /// [`ScriptedFault`]). Ignored under [`RecoveryPolicy::Ideal`], which
    /// protects nothing.
    pub scripted_faults: Vec<ScriptedFault>,
}

impl Default for DistResilienceConfig {
    fn default() -> Self {
        Self {
            policy: RecoveryPolicy::Feir,
            page_doubles: feir_sparse::PAGE_DOUBLES,
            tolerance: 1e-10,
            max_iterations: 10_000,
            scripted_faults: Vec::new(),
        }
    }
}

impl DistResilienceConfig {
    /// Configuration for `policy` with every other field defaulted.
    pub fn for_policy(policy: RecoveryPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// Builder-style setter for the page size.
    pub fn with_page_doubles(mut self, page_doubles: usize) -> Self {
        self.page_doubles = page_doubles.max(1);
        self
    }

    /// Builder-style setter for the tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Builder-style setter for the iteration cap.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Builder-style setter for the scripted fault schedule.
    pub fn with_scripted_faults(mut self, faults: Vec<ScriptedFault>) -> Self {
        self.scripted_faults = faults;
        self
    }
}

/// One live [`FaultInjector`] stream per rank, attached to the per-rank
/// registries of a [`RankDomains`].
///
/// This is the distributed version of the paper's injection methodology
/// (Section 5.3): every rank has an independent error process against its own
/// memory, so a DUE is always attributable to exactly one rank.
pub struct InjectionDriver {
    injectors: Vec<FaultInjector>,
}

impl InjectionDriver {
    /// Starts one injector per rank with the given per-rank plans.
    ///
    /// # Panics
    /// Panics if `plans.len()` differs from the number of ranks.
    pub fn start(domains: &RankDomains, plans: Vec<InjectionPlan>) -> Self {
        assert_eq!(
            plans.len(),
            domains.num_ranks(),
            "need exactly one injection plan per rank"
        );
        let injectors = plans
            .into_iter()
            .enumerate()
            .map(|(rank, plan)| FaultInjector::start(domains.registry(rank), plan))
            .collect();
        Self { injectors }
    }

    /// Starts one injector per rank from a single template plan. Exponential
    /// plans get a per-rank seed offset so the streams are independent (the
    /// MTBE is per rank: divide a machine-wide frequency by the rank count
    /// before calling this).
    pub fn start_uniform(domains: &RankDomains, plan: &InjectionPlan) -> Self {
        let plans = (0..domains.num_ranks())
            .map(|rank| match plan {
                InjectionPlan::Exponential { mtbe, seed } => InjectionPlan::Exponential {
                    mtbe: *mtbe,
                    seed: seed.wrapping_add(rank as u64),
                },
                other => other.clone(),
            })
            .collect();
        Self::start(domains, plans)
    }

    /// Number of rank streams.
    pub fn num_ranks(&self) -> usize {
        self.injectors.len()
    }

    /// Pauses every rank's stream (see [`FaultInjector::pause`]).
    pub fn pause_all(&self) {
        for injector in &self.injectors {
            injector.pause();
        }
    }

    /// Resumes every rank's stream.
    pub fn resume_all(&self) {
        for injector in &self.injectors {
            injector.resume();
        }
    }

    /// Stops every stream and returns the per-rank injection reports, in
    /// rank order.
    pub fn stop(self) -> Vec<InjectionReport> {
        self.injectors
            .into_iter()
            .map(FaultInjector::stop)
            .collect()
    }
}

/// Outcome of a distributed resilient solve.
#[derive(Debug, Clone)]
pub struct DistResilientReport {
    /// The assembled solution.
    pub x: Vec<f64>,
    /// Iterations performed, counting re-done work after rollbacks/restarts.
    pub iterations: usize,
    /// Final relative residual, recomputed serially on the assembled
    /// solution (honest even when a policy corrupted the solver's own ε).
    pub relative_residual: f64,
    /// True if the explicit residual meets the tolerance.
    pub converged: bool,
    /// Number of simulated ranks.
    pub ranks: usize,
    /// Policy that ran.
    pub policy: RecoveryPolicy,
    /// Relative residual estimate at every convergence check. With zero
    /// faults this is bitwise-identical to
    /// [`DistSolveResult::residual_history`](crate::cg::DistSolveResult).
    pub residual_history: Vec<f64>,
    /// Per-rank fault attribution (registry counters; attach the injector
    /// view with [`DistResilientReport::absorb_injection_reports`]).
    pub faults: DistributedFaultReport,
    /// Pages reconstructed exactly or lossily across all ranks.
    pub pages_recovered: usize,
    /// Pages blank-accepted because no recovery relation was solvable
    /// (simultaneous related losses — the paper "simply ignores" these).
    pub pages_ignored: usize,
    /// Values fetched across rank boundaries by the recovery protocol.
    pub cross_rank_values: usize,
    /// Checkpoint rollbacks (checkpoint policy only).
    pub rollbacks: usize,
    /// Restarts (Lossy Restart policy only).
    pub restarts: usize,
    /// Wall-clock solve time.
    pub elapsed: Duration,
}

impl DistResilientReport {
    /// Folds the per-rank injector reports returned by
    /// [`InjectionDriver::stop`] into the fault attribution.
    pub fn absorb_injection_reports(&mut self, reports: &[InjectionReport]) {
        self.faults.absorb_injection_reports(reports);
    }
}

/// A distributed resilient CG solver bound to one system, one rank count and
/// one set of per-rank fault domains.
///
/// Create the solver first, then attach injection (an [`InjectionDriver`] on
/// [`DistResilientCg::domains`], scripted faults in the config, or direct
/// [`PageRegistry::inject`] calls) and finally call
/// [`DistResilientCg::solve`].
pub struct DistResilientCg<'a> {
    a: &'a CsrMatrix,
    b: &'a [f64],
    ranks: usize,
    config: DistResilienceConfig,
    partition: RankPartition,
    plan: HaloPlan,
    domains: RankDomains,
    pages: Vec<BlockPartition>,
}

impl<'a> DistResilientCg<'a> {
    /// Creates the solver and registers the protected vectors (`x`, `g`,
    /// `d`, `q`) of every rank in its fault domain.
    ///
    /// # Panics
    /// Panics if the matrix is not square or `b` has the wrong length.
    pub fn new(a: &'a CsrMatrix, b: &'a [f64], ranks: usize, config: DistResilienceConfig) -> Self {
        assert_eq!(a.rows(), a.cols(), "resilient CG needs a square matrix");
        assert_eq!(a.rows(), b.len(), "rhs length mismatch");
        let ranks = effective_ranks(a.rows(), ranks);
        let partition = RankPartition::new(a.rows(), ranks);
        let plan = HaloPlan::build(a, &partition);
        let domains = RankDomains::new(ranks);
        let mut pages = Vec::with_capacity(ranks);
        for rank in 0..ranks {
            let local = BlockPartition::new(partition.range(rank).len(), config.page_doubles);
            if config.policy.needs_protection() {
                let registry = domains.registry(rank);
                for vector in [
                    ProtectedVector::X,
                    ProtectedVector::G,
                    ProtectedVector::D,
                    ProtectedVector::Q,
                ] {
                    let id = registry
                        .register(format!("rank{rank}/{}", vector.name()), local.num_blocks());
                    debug_assert_eq!(id, vector.id());
                }
            }
            pages.push(local);
        }
        // A scripted fault outside the (possibly clamped) rank/page space
        // would silently never fire and the experiment would measure a
        // fault-free run while claiming otherwise — reject it up front.
        if config.policy.needs_protection() {
            for fault in &config.scripted_faults {
                assert!(
                    fault.rank < ranks,
                    "scripted fault targets rank {} but the solve runs on {ranks} ranks \
                     (rank count is clamped to the problem size)",
                    fault.rank
                );
                assert!(
                    fault.page < pages[fault.rank].num_blocks(),
                    "scripted fault targets page {} of {} on rank {}, which has {} pages",
                    fault.page,
                    fault.vector.name(),
                    fault.rank,
                    pages[fault.rank].num_blocks()
                );
            }
        }
        Self {
            a,
            b,
            ranks,
            config,
            partition,
            plan,
            domains,
            pages,
        }
    }

    /// The per-rank fault domains targeted by this solve; hand them to an
    /// [`InjectionDriver`] for live injection.
    pub fn domains(&self) -> &RankDomains {
        &self.domains
    }

    /// Number of simulated ranks (after clamping to the problem size).
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The configuration in use.
    pub fn config(&self) -> &DistResilienceConfig {
        &self.config
    }

    /// The rank-local page partition of `rank`'s protected vectors.
    pub fn page_partition(&self, rank: usize) -> BlockPartition {
        self.pages[rank]
    }

    /// Runs the solve. Consumes the solver (the protected vectors are bound
    /// to this run's fault domains).
    pub fn solve(self) -> DistResilientReport {
        let start = Instant::now();
        let n = self.a.rows();
        let comms = RankComm::for_ranks(&self.plan, self.ranks);

        let mut x = vec![0.0; n];
        let mut iterations = 0;
        let mut residual_history = Vec::new();
        let mut pages_recovered = 0;
        let mut pages_ignored = 0;
        let mut cross_rank_values = 0;
        let mut rollbacks = 0;
        let mut restarts = 0;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.ranks);
            for comm in comms {
                let rank = comm.rank();
                let ctx = RankCtx {
                    a: self.a,
                    b: self.b,
                    policy: self.config.policy,
                    tolerance: self.config.tolerance,
                    max_iterations: self.config.max_iterations,
                    rank,
                    own: self.partition.range(rank),
                    pages: self.pages[rank],
                    registry: self.domains.registry(rank),
                    partition: self.partition.clone(),
                    scripted: self
                        .config
                        .scripted_faults
                        .iter()
                        .filter(|f| f.rank == rank)
                        .copied()
                        .collect(),
                };
                handles.push(scope.spawn(move || rank_resilient_cg(ctx, comm)));
            }
            for handle in handles {
                let outcome = handle.join().expect("rank thread panicked");
                x[self.partition.range(outcome.rank)].copy_from_slice(&outcome.x_own);
                iterations = outcome.iterations;
                if outcome.rank == 0 {
                    residual_history = outcome.history;
                }
                pages_recovered += outcome.pages_recovered;
                pages_ignored += outcome.pages_ignored;
                cross_rank_values += outcome.cross_rank_values;
                // Rollbacks and restarts are global events: every rank
                // executes them together, so any one rank's count is the
                // machine count.
                if outcome.rank == 0 {
                    rollbacks = outcome.rollbacks;
                    restarts = outcome.restarts;
                }
            }
        });

        // Explicit residual on the assembled solution: honest convergence
        // reporting even when blank-accepted pages corrupted the solver's ε.
        let norm_b = vecops::norm2(self.b).max(f64::MIN_POSITIVE);
        let mut residual = vec![0.0; n];
        self.a.spmv(&x, &mut residual);
        for (ri, bi) in residual.iter_mut().zip(self.b) {
            *ri = bi - *ri;
        }
        let relative_residual = vecops::norm2(&residual) / norm_b;

        let mut faults = DistributedFaultReport::new(self.ranks);
        for counts in self.domains.per_rank_counts() {
            faults.set_registry_counts(
                counts.rank,
                counts.injected,
                counts.discovered,
                counts.recovered,
            );
        }

        DistResilientReport {
            x,
            iterations,
            relative_residual,
            converged: relative_residual <= self.config.tolerance,
            ranks: self.ranks,
            policy: self.config.policy,
            residual_history,
            faults,
            pages_recovered,
            pages_ignored,
            cross_rank_values,
            rollbacks,
            restarts,
            elapsed: start.elapsed(),
        }
    }
}

/// One-shot form of [`DistResilientCg`]: builds the solver and runs it with
/// no live injection (scripted faults in `config` still apply).
pub fn distributed_resilient_cg(
    a: &CsrMatrix,
    b: &[f64],
    ranks: usize,
    config: DistResilienceConfig,
) -> DistResilientReport {
    DistResilientCg::new(a, b, ranks, config).solve()
}

// ----- cross-rank exact recovery relations ---------------------------------

/// Solves the coupled dense system `A_RR · y = rhs` over the given sorted
/// global rows (a principal submatrix of the SPD operator, hence Cholesky).
fn solve_coupled(a: &CsrMatrix, rows: &[usize], rhs: &[f64]) -> Option<Vec<f64>> {
    debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows must be sorted");
    let k = rows.len();
    let mut m = DenseMatrix::zeros(k, k);
    for (i, &r) in rows.iter().enumerate() {
        let (cols, vals) = a.row(r);
        for (c, v) in cols.iter().zip(vals) {
            if let Ok(j) = rows.binary_search(c) {
                m.set(i, j, *v);
            }
        }
    }
    m.cholesky().ok().map(|chol| chol.solve(rhs))
}

/// Exact recovery of lost rows of the **iterate**: solves
/// `A_RR x_R = b_R − g_R − Σ_{c∉R} A_Rc x_c` over the sorted global rows `R`.
///
/// `g_at_rows[i]` is the residual at `rows[i]`; `x_full` must hold valid data
/// at every stencil column outside `rows` — on a distributed machine the
/// remote columns are fetched through the
/// [`RecoveryMsg`](crate::comm::RecoveryMsg) exchange first. The result
/// matches the shared-memory
/// [`BlockRecovery::recover_iterate_rhs`](feir_recovery::BlockRecovery::recover_iterate_rhs)
/// to round-off (and generalises it to arbitrary simultaneous row sets).
pub fn recover_iterate_rows(
    a: &CsrMatrix,
    b: &[f64],
    g_at_rows: &[f64],
    rows: &[usize],
    x_full: &[f64],
) -> Option<Vec<f64>> {
    debug_assert_eq!(g_at_rows.len(), rows.len());
    let rhs: Vec<f64> = rows
        .iter()
        .zip(g_at_rows)
        .map(|(&r, g_r)| {
            let (cols, vals) = a.row(r);
            let mut acc = b[r] - g_r;
            for (c, v) in cols.iter().zip(vals) {
                if rows.binary_search(c).is_err() {
                    acc -= v * x_full[*c];
                }
            }
            acc
        })
        .collect();
    solve_coupled(a, rows, &rhs)
}

/// Exact recovery of lost rows of the **search direction**: solves
/// `A_RR d_R = q_R − Σ_{c∉R} A_Rc d_c` over the sorted global rows `R`.
///
/// `q_at_rows[i]` is the matvec product at `rows[i]`; `d_full` must hold the
/// direction that produced `q` at every stencil column outside `rows` — the
/// recovering rank's retained halo snapshot, not freshly fetched values (a
/// neighbour may already have advanced its direction).
pub fn recover_direction_rows(
    a: &CsrMatrix,
    q_at_rows: &[f64],
    rows: &[usize],
    d_full: &[f64],
) -> Option<Vec<f64>> {
    debug_assert_eq!(q_at_rows.len(), rows.len());
    let rhs: Vec<f64> = rows
        .iter()
        .zip(q_at_rows)
        .map(|(&r, q_r)| {
            let (cols, vals) = a.row(r);
            let mut acc = *q_r;
            for (c, v) in cols.iter().zip(vals) {
                if rows.binary_search(c).is_err() {
                    acc -= v * d_full[*c];
                }
            }
            acc
        })
        .collect();
    solve_coupled(a, rows, &rhs)
}

/// Lossy interpolation of one lost page of the iterate (no residual term):
/// `A_RR x_R = b_R − Σ_{c∉R} A_Rc x_c`, the distributed form of the paper's
/// Lossy Restart interpolation (Theorems 1–3).
fn lossy_interpolate_rows(
    a: &CsrMatrix,
    b: &[f64],
    rows: &[usize],
    x_full: &[f64],
) -> Option<Vec<f64>> {
    let rhs: Vec<f64> = rows
        .iter()
        .map(|&r| {
            let (cols, vals) = a.row(r);
            let mut acc = b[r];
            for (c, v) in cols.iter().zip(vals) {
                if rows.binary_search(c).is_err() {
                    acc -= v * x_full[*c];
                }
            }
            acc
        })
        .collect();
    solve_coupled(a, rows, &rhs)
}

/// For every given global row, the remote stencil columns grouped by owning
/// rank — the request set of one recovery exchange.
fn remote_stencil_requests(
    a: &CsrMatrix,
    partition: &RankPartition,
    rank: usize,
    rows: &[usize],
) -> HashMap<usize, Vec<usize>> {
    let own = partition.range(rank);
    let mut requests: HashMap<usize, Vec<usize>> = HashMap::new();
    for &r in rows {
        let (cols, _) = a.row(r);
        for &c in cols {
            if !own.contains(&c) {
                requests.entry(partition.owner_of(c)).or_default().push(c);
            }
        }
    }
    for indices in requests.values_mut() {
        indices.sort_unstable();
        indices.dedup();
    }
    requests
}

// ----- the per-rank solver loop --------------------------------------------

/// Everything one rank's solver thread needs.
struct RankCtx<'a> {
    a: &'a CsrMatrix,
    b: &'a [f64],
    policy: RecoveryPolicy,
    tolerance: f64,
    max_iterations: usize,
    rank: usize,
    own: Range<usize>,
    pages: BlockPartition,
    registry: Arc<PageRegistry>,
    partition: RankPartition,
    scripted: Vec<ScriptedFault>,
}

/// What one rank's solver thread reports back.
struct RankOutcome {
    rank: usize,
    x_own: Vec<f64>,
    iterations: usize,
    history: Vec<f64>,
    pages_recovered: usize,
    pages_ignored: usize,
    cross_rank_values: usize,
    rollbacks: usize,
    restarts: usize,
}

/// Touches every page of a protected local vector; lost pages are blanked
/// (the fresh `mmap` of the paper's signal handler) and returned.
fn scrub_blank(
    registry: &PageRegistry,
    id: VectorId,
    pages: &BlockPartition,
    data: &mut [f64],
) -> Vec<usize> {
    let mut lost = Vec::new();
    for p in 0..pages.num_blocks() {
        match registry.on_access(id, p) {
            AccessOutcome::Ok => {}
            AccessOutcome::FaultDiscovered | AccessOutcome::AlreadyLost => {
                for v in &mut data[pages.range(p)] {
                    *v = 0.0;
                }
                lost.push(p);
            }
        }
    }
    lost
}

/// Marks a page healthy again after its data has been reconstructed (or
/// blank-accepted).
fn mark_page(registry: &PageRegistry, id: VectorId, page: usize) {
    let _ = registry.on_access(id, page);
    registry.mark_recovered(id, page);
}

/// Global row range of rank-local page `p`.
fn global_rows(own_start: usize, pages: &BlockPartition, p: usize) -> Range<usize> {
    let local = pages.range(p);
    own_start + local.start..own_start + local.end
}

/// Reconstructions planned for lost iterate/residual pages (computed from a
/// read-only snapshot so AFEIR can overlap it with the ε reduction).
#[derive(Default)]
struct StatePlan {
    /// Coupled exact solve over every recoverable lost `x` row, if solvable.
    x_rows: Vec<usize>,
    x_values: Option<Vec<f64>>,
    /// Recomputed residual pages `(page, values)`.
    g_fixes: Vec<(usize, Vec<f64>)>,
}

/// Plans the exact recovery of lost `x` pages (`rec_x`) and lost `g` pages
/// (`rec_g`) from the patched snapshot; never mutates solver state.
fn plan_state_fixes(
    ctx: &RankCtx<'_>,
    rec_x: &[usize],
    rec_g: &[usize],
    g: &[f64],
    x_full: &[f64],
) -> StatePlan {
    let x_rows: Vec<usize> = rec_x
        .iter()
        .flat_map(|&p| global_rows(ctx.own.start, &ctx.pages, p))
        .collect();
    let g_at_rows: Vec<f64> = rec_x
        .iter()
        .flat_map(|&p| ctx.pages.range(p))
        .map(|i| g[i])
        .collect();
    let x_values = if x_rows.is_empty() {
        None
    } else {
        recover_iterate_rows(ctx.a, ctx.b, &g_at_rows, &x_rows, x_full)
    };
    // Recompute lost residual pages from the repaired iterate:
    // g_R = b_R − Σ_c A_Rc x_c.
    let mut x_view = x_full.to_vec();
    if let Some(values) = &x_values {
        for (&r, v) in x_rows.iter().zip(values) {
            x_view[r] = *v;
        }
    }
    let mut g_fixes = Vec::with_capacity(rec_g.len());
    for &p in rec_g {
        let rows = global_rows(ctx.own.start, &ctx.pages, p);
        let mut out = vec![0.0; rows.len()];
        ctx.a.spmv_rows(rows.start, rows.end, &x_view, &mut out);
        for (k, r) in rows.enumerate() {
            out[k] = ctx.b[r] - out[k];
        }
        g_fixes.push((p, out));
    }
    StatePlan {
        x_rows,
        x_values,
        g_fixes,
    }
}

/// The per-rank resilient CG loop (see the module docs for the protocol).
#[allow(clippy::too_many_lines)]
fn rank_resilient_cg(ctx: RankCtx<'_>, comm: RankComm) -> RankOutcome {
    let a = ctx.a;
    let b = ctx.b;
    let own = ctx.own.clone();
    let n = a.cols();
    let protected = ctx.policy.needs_protection();
    let forward = ctx.policy.is_forward_exact();
    let registry = &ctx.registry;
    let pages = &ctx.pages;

    // x lives inside its full-length buffer so cross-rank recovery can
    // scatter fetched halo entries around the owned range.
    let mut x_full = vec![0.0; n];
    let mut g: Vec<f64> = b[own.clone()].to_vec(); // g = b − A·0
    let mut d = vec![0.0; own.len()];
    let mut q = vec![0.0; own.len()];
    let mut d_full = vec![0.0; n];

    let mut pages_recovered = 0usize;
    let mut pages_ignored = 0usize;
    let mut cross_rank_values = 0usize;
    let mut rollbacks = 0usize;
    let mut restarts = 0usize;

    // Pre-loop scrub: faults injected before the solve land on the known
    // initial state, so the blank page *is* the correct data (x = d = q = 0)
    // or is refilled trivially (g = b).
    if protected {
        for p in scrub_blank(registry, ids::X, pages, &mut x_full[own.clone()]) {
            mark_page(registry, ids::X, p);
        }
        for p in scrub_blank(registry, ids::D, pages, &mut d) {
            mark_page(registry, ids::D, p);
        }
        for p in scrub_blank(registry, ids::Q, pages, &mut q) {
            mark_page(registry, ids::Q, p);
        }
        for p in scrub_blank(registry, ids::G, pages, &mut g) {
            let local = pages.range(p);
            let global = global_rows(own.start, pages, p);
            g[local].copy_from_slice(&b[global]);
            mark_page(registry, ids::G, p);
        }
    }

    let mut store = match ctx.policy {
        RecoveryPolicy::Checkpoint { .. } => Some(CheckpointStore::new(CheckpointTarget::Memory)),
        _ => None,
    };

    let norm_b_sq = comm.allreduce_sum(vecops::norm2_squared(&b[own.clone()]));
    let norm_b = norm_b_sq.sqrt().max(f64::MIN_POSITIVE);
    let mut eps = comm.allreduce_sum(vecops::norm2_squared(&g));
    let mut eps_old = f64::INFINITY;
    let mut iterations = 0usize;
    let mut history = Vec::new();

    for t in 0..ctx.max_iterations {
        let rel = eps.max(0.0).sqrt() / norm_b;
        history.push(rel);
        if rel <= ctx.tolerance {
            break;
        }
        iterations = t + 1;

        // Scripted faults for this iteration land now, before any touch.
        if protected {
            for fault in &ctx.scripted {
                if fault.iteration == t {
                    registry.inject(fault.vector.id(), fault.page);
                }
            }
        }

        // Periodic local checkpoint of (x, d, scalars).
        if let (RecoveryPolicy::Checkpoint { interval }, Some(store)) = (ctx.policy, store.as_mut())
        {
            if t % interval.max(1) == 0 {
                store.checkpoint(t, &x_full[own.clone()], &d, &[eps, eps_old]);
            }
        }

        let beta = if eps_old.is_finite() && eps_old != 0.0 {
            eps / eps_old
        } else {
            0.0
        };

        // ---- direction protection (FEIR/AFEIR; purely rank-local) --------
        // d still holds d(t−1) here and q holds A·d(t−1), so a lost page of
        // the direction is reconstructed from the inverse matvec relation
        // before the in-place update consumes it.
        let lost_d = if forward {
            scrub_blank(registry, ids::D, pages, &mut d)
        } else {
            Vec::new()
        };
        if lost_d.is_empty() {
            // Fault-free fast path: the exact arithmetic of `distributed_cg`.
            vecops::xpay(&g, beta, &mut d);
        } else {
            // Refresh the owned range of the retained snapshot (blanks
            // included — the lost values must not be readable) while the halo
            // keeps the d(t−1) entries of the neighbours.
            d_full[own.clone()].copy_from_slice(&d);
            // A lost direction page is recoverable only if its q page
            // survived (simultaneous loss of d_R and q_R is the "related
            // data" case the paper ignores).
            let mut recoverable = Vec::new();
            let mut abandoned = Vec::new();
            for &p in &lost_d {
                if matches!(registry.on_access(ids::Q, p), AccessOutcome::Ok) {
                    recoverable.push(p);
                } else {
                    abandoned.push(p);
                }
            }
            let rows: Vec<usize> = recoverable
                .iter()
                .flat_map(|&p| global_rows(own.start, pages, p))
                .collect();
            let q_at_rows: Vec<f64> = recoverable
                .iter()
                .flat_map(|&p| pages.range(p))
                .map(|i| q[i])
                .collect();
            let recover = || {
                if rows.is_empty() {
                    None
                } else {
                    recover_direction_rows(a, &q_at_rows, &rows, &d_full)
                }
            };
            let update_surviving = |d: &mut Vec<f64>| {
                for p in 0..pages.num_blocks() {
                    if !lost_d.contains(&p) {
                        for i in pages.range(p) {
                            d[i] = g[i] + beta * d[i];
                        }
                    }
                }
            };
            let values = if ctx.policy == RecoveryPolicy::Afeir {
                // AFEIR: reconstruct the lost pages while the surviving pages
                // run their direction update on the work-stealing pool.
                rayon::join(recover, || update_surviving(&mut d)).0
            } else {
                // FEIR: the same two steps, in the critical path.
                let values = recover();
                update_surviving(&mut d);
                values
            };
            // Finish the update on the lost pages with the reconstructed
            // d(t−1) (or the blank, when unrecoverable).
            match values {
                Some(values) => {
                    for (&r, v) in rows.iter().zip(&values) {
                        let i = r - own.start;
                        d[i] = g[i] + beta * v;
                    }
                    pages_recovered += recoverable.len();
                }
                None => {
                    for &p in &recoverable {
                        for i in pages.range(p) {
                            d[i] = g[i];
                        }
                    }
                    pages_ignored += recoverable.len();
                }
            }
            for &p in &abandoned {
                for i in pages.range(p) {
                    d[i] = g[i];
                }
            }
            pages_ignored += abandoned.len();
            for &p in &lost_d {
                mark_page(registry, ids::D, p);
            }
        }

        d_full[own.clone()].copy_from_slice(&d);
        comm.exchange_halo(&mut d_full);
        a.spmv_rows(own.start, own.end, &d_full, &mut q);

        // ---- q protection (FEIR/AFEIR; local recompute, r1 of Figure 1) ---
        let dq_local = if forward {
            let lost_q = scrub_blank(registry, ids::Q, pages, &mut q);
            if lost_q.is_empty() {
                vecops::dot(&d, &q)
            } else if ctx.policy == RecoveryPolicy::Feir {
                // Critical path: recompute, then reduce over clean data.
                for &p in &lost_q {
                    let rows = global_rows(own.start, pages, p);
                    let local = pages.range(p);
                    a.spmv_rows(rows.start, rows.end, &d_full, &mut q[local]);
                    mark_page(registry, ids::Q, p);
                }
                pages_recovered += lost_q.len();
                vecops::dot(&d, &q)
            } else {
                // AFEIR: the recomputation overlaps the partial reduction;
                // the skipped contributions are patched in afterwards,
                // before the value enters the allreduce.
                let (fixes, partial) = rayon::join(
                    || {
                        lost_q
                            .iter()
                            .map(|&p| {
                                let rows = global_rows(own.start, pages, p);
                                let mut out = vec![0.0; rows.len()];
                                a.spmv_rows(rows.start, rows.end, &d_full, &mut out);
                                (p, out)
                            })
                            .collect::<Vec<_>>()
                    },
                    || {
                        let mut sum = 0.0;
                        for p in 0..pages.num_blocks() {
                            if !lost_q.contains(&p) {
                                let local = pages.range(p);
                                sum += vecops::dot(&d[local.clone()], &q[local]);
                            }
                        }
                        sum
                    },
                );
                let mut sum = partial;
                for (p, values) in fixes {
                    let local = pages.range(p);
                    q[local.clone()].copy_from_slice(&values);
                    mark_page(registry, ids::Q, p);
                    sum += vecops::dot(&d[local.clone()], &q[local]);
                }
                pages_recovered += lost_q.len();
                sum
            }
        } else {
            vecops::dot(&d, &q)
        };
        let dq = comm.allreduce_sum(dq_local);
        if dq == 0.0 || !dq.is_finite() {
            break;
        }
        let alpha = eps / dq;
        vecops::axpy(alpha, &d, &mut x_full[own.clone()]);
        vecops::axpy(-alpha, &q, &mut g);

        // ---- iterate/residual protection + ε reduction --------------------
        match ctx.policy {
            RecoveryPolicy::Ideal => {
                eps_old = eps;
                eps = comm.allreduce_sum(vecops::norm2_squared(&g));
            }
            RecoveryPolicy::Feir | RecoveryPolicy::Afeir => {
                let lost_x = scrub_blank(registry, ids::X, pages, &mut x_full[own.clone()]);
                let lost_g = scrub_blank(registry, ids::G, pages, &mut g);
                let faulty = comm.fault_flag(lost_x.len() + lost_g.len());
                let eps_local = if !faulty {
                    vecops::norm2_squared(&g)
                } else {
                    // Cross-rank round: fetch the remote stencil entries of
                    // every lost row (x is never exchanged by CG, so this is
                    // the only way to evaluate the off-diagonal terms).
                    let lost_rows: Vec<usize> = lost_x
                        .iter()
                        .chain(&lost_g)
                        .flat_map(|&p| global_rows(own.start, pages, p))
                        .collect();
                    let requests = remote_stencil_requests(a, &ctx.partition, ctx.rank, &lost_rows);
                    cross_rank_values += comm.recovery_exchange(&requests, &mut x_full);
                    // Pages lost in both x and g are the unrecoverable
                    // related-loss case: blank-accepted.
                    let conflicted: Vec<usize> = lost_x
                        .iter()
                        .copied()
                        .filter(|p| lost_g.contains(p))
                        .collect();
                    let rec_x: Vec<usize> = lost_x
                        .iter()
                        .copied()
                        .filter(|p| !conflicted.contains(p))
                        .collect();
                    let rec_g: Vec<usize> = lost_g
                        .iter()
                        .copied()
                        .filter(|p| !conflicted.contains(p))
                        .collect();
                    let (plan, partial) = if ctx.policy == RecoveryPolicy::Afeir {
                        // AFEIR: interpolation beside the partial ε reduction.
                        rayon::join(
                            || plan_state_fixes(&ctx, &rec_x, &rec_g, &g, &x_full),
                            || {
                                let mut sum = 0.0;
                                for p in 0..pages.num_blocks() {
                                    if !lost_g.contains(&p) {
                                        sum += vecops::norm2_squared(&g[pages.range(p)]);
                                    }
                                }
                                Some(sum)
                            },
                        )
                    } else {
                        (plan_state_fixes(&ctx, &rec_x, &rec_g, &g, &x_full), None)
                    };
                    // Install the reconstructed pages.
                    match &plan.x_values {
                        Some(values) => {
                            for (&r, v) in plan.x_rows.iter().zip(values) {
                                x_full[r] = *v;
                            }
                            pages_recovered += rec_x.len();
                        }
                        None => pages_ignored += rec_x.len(),
                    }
                    for p in &rec_x {
                        mark_page(registry, ids::X, *p);
                    }
                    for (p, values) in &plan.g_fixes {
                        g[pages.range(*p)].copy_from_slice(values);
                        mark_page(registry, ids::G, *p);
                    }
                    pages_recovered += plan.g_fixes.len();
                    for &p in &conflicted {
                        mark_page(registry, ids::X, p);
                        mark_page(registry, ids::G, p);
                    }
                    pages_ignored += 2 * conflicted.len();
                    match partial {
                        Some(partial) => {
                            // Patch the contributions of the pages the
                            // overlapped reduction skipped.
                            let mut sum = partial;
                            for &p in &lost_g {
                                sum += vecops::norm2_squared(&g[pages.range(p)]);
                            }
                            sum
                        }
                        None => vecops::norm2_squared(&g),
                    }
                };
                eps_old = eps;
                eps = comm.allreduce_sum(eps_local);
            }
            RecoveryPolicy::Trivial => {
                // Blank every lost page and keep going (Section 4.1): purely
                // local, no collectives beyond the ε reduction.
                let mut blanked = 0;
                for (id, data) in [
                    (ids::X, &mut x_full[own.clone()]),
                    (ids::G, &mut g[..]),
                    (ids::D, &mut d[..]),
                    (ids::Q, &mut q[..]),
                ] {
                    for p in scrub_blank(registry, id, pages, data) {
                        mark_page(registry, id, p);
                        blanked += 1;
                    }
                }
                pages_ignored += blanked;
                eps_old = eps;
                eps = comm.allreduce_sum(vecops::norm2_squared(&g));
            }
            RecoveryPolicy::Checkpoint { .. } => {
                let mut lost_total = 0;
                for (id, data) in [
                    (ids::X, &mut x_full[own.clone()]),
                    (ids::G, &mut g[..]),
                    (ids::D, &mut d[..]),
                    (ids::Q, &mut q[..]),
                ] {
                    for p in scrub_blank(registry, id, pages, data) {
                        mark_page(registry, id, p);
                        lost_total += 1;
                    }
                }
                if comm.fault_flag(lost_total) {
                    // Global rollback: every rank restores its local
                    // checkpoint, then the residual is recomputed from the
                    // restored iterate (one extra halo exchange of x).
                    let store = store.as_mut().expect("checkpoint store exists");
                    let mut scalars = Vec::new();
                    if store
                        .rollback(&mut x_full[own.clone()], &mut d, &mut scalars)
                        .is_some()
                    {
                        rollbacks += 1;
                    }
                    comm.exchange_halo(&mut x_full);
                    a.spmv_rows(own.start, own.end, &x_full, &mut g);
                    for (k, r) in own.clone().enumerate() {
                        g[k] = b[r] - g[k];
                    }
                    eps_old = scalars.get(1).copied().unwrap_or(f64::INFINITY);
                    eps = comm.allreduce_sum(vecops::norm2_squared(&g));
                    continue;
                }
                eps_old = eps;
                eps = comm.allreduce_sum(vecops::norm2_squared(&g));
            }
            RecoveryPolicy::LossyRestart => {
                let lost_x = scrub_blank(registry, ids::X, pages, &mut x_full[own.clone()]);
                let mut lost_total = lost_x.len();
                for (id, data) in [
                    (ids::G, &mut g[..]),
                    (ids::D, &mut d[..]),
                    (ids::Q, &mut q[..]),
                ] {
                    for p in scrub_blank(registry, id, pages, data) {
                        mark_page(registry, id, p);
                        lost_total += 1;
                    }
                }
                if comm.fault_flag(lost_total) {
                    // Interpolate the lost iterate pages (block-Jacobi step,
                    // no residual term), fetching the remote stencil entries
                    // first, then restart globally.
                    let lost_rows: Vec<usize> = lost_x
                        .iter()
                        .flat_map(|&p| global_rows(own.start, pages, p))
                        .collect();
                    let requests = remote_stencil_requests(a, &ctx.partition, ctx.rank, &lost_rows);
                    cross_rank_values += comm.recovery_exchange(&requests, &mut x_full);
                    for &p in &lost_x {
                        let rows: Vec<usize> = global_rows(own.start, pages, p).collect();
                        match lossy_interpolate_rows(a, b, &rows, &x_full) {
                            Some(values) => {
                                for (&r, v) in rows.iter().zip(&values) {
                                    x_full[r] = *v;
                                }
                                pages_recovered += 1;
                            }
                            None => pages_ignored += 1,
                        }
                        mark_page(registry, ids::X, p);
                    }
                    // Restart: recompute g from the interpolated iterate and
                    // discard the Krylov space.
                    comm.exchange_halo(&mut x_full);
                    a.spmv_rows(own.start, own.end, &x_full, &mut g);
                    for (k, r) in own.clone().enumerate() {
                        g[k] = b[r] - g[k];
                    }
                    d.iter_mut().for_each(|v| *v = 0.0);
                    restarts += 1;
                    eps_old = f64::INFINITY;
                    eps = comm.allreduce_sum(vecops::norm2_squared(&g));
                    continue;
                }
                eps_old = eps;
                eps = comm.allreduce_sum(vecops::norm2_squared(&g));
            }
        }
    }

    RankOutcome {
        rank: ctx.rank,
        x_own: x_full[own].to_vec(),
        iterations,
        history,
        pages_recovered,
        pages_ignored,
        cross_rank_values,
        rollbacks,
        restarts,
    }
}
