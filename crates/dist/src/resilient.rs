//! Distributed resilient solvers: cross-rank FEIR/AFEIR recovery with live
//! fault injection (the paper's Section 3.4 scaling configuration).
//!
//! On the MPI+OmpSs machine of the paper a DUE is *contained to the rank that
//! owns the faulted page*: the other ranks keep computing, and the recovering
//! rank reconstructs the lost block with the exact forward interpolations of
//! Table 1. Since PR 4 the actual iteration machinery lives in two layers:
//!
//! * the solver-agnostic **engine** ([`feir_recovery::engine`]) owns the
//!   algebraic recovery relations
//!   ([`RecoverableIteration`](feir_recovery::RecoverableIteration),
//!   instantiated here as [`CgRelations`] and [`PcgRelations`]), the
//!   coupled-row page-reconstruction kernels, scrub-point fault
//!   materialisation and the FEIR/AFEIR overlap scheduler;
//! * the generic per-rank loop (the crate-private `rank_loop` module)
//!   drives one relations instance per rank under the full
//!   [`RecoveryPolicy`] matrix, using the cross-rank
//!   [`RecoveryMsg`](crate::comm::RecoveryMsg) request/reply round for
//!   interpolations whose stencil crosses a rank boundary and the
//!   **split-phase allreduce** ([`RankComm::start_allreduce`]) so AFEIR
//!   overlaps page reconstruction with the reduction wait itself.
//!
//! This module is the thin instantiation layer on top: configuration,
//! per-rank fault domains, live injection ([`InjectionDriver`]), and the
//! public entry points [`distributed_resilient_cg`] /
//! [`distributed_resilient_pcg`] (block-Jacobi preconditioner with
//! rank-local page blocks, applied without communication). With **zero
//! faults both solvers are bitwise-identical to their plain counterparts**
//! ([`distributed_cg`](crate::cg::distributed_cg) /
//! [`distributed_pcg`](crate::pcg::distributed_pcg)): the scrub points do no
//! floating-point work, the fault flag is a separate scalar allreduce, and
//! every kernel call and reduction happens in the same order on the same
//! values.

use std::time::{Duration, Instant};

use feir_pagemem::{FaultInjector, InjectionPlan, InjectionReport, VectorId};
use feir_recovery::report::DistributedFaultReport;
use feir_recovery::{
    CgRelations, MergedCgRelations, MergedPcgRelations, PcgRelations, RecoveryPolicy,
};
use feir_sparse::blocking::BlockPartition;
use feir_sparse::{CsrMatrix, LocalBlockJacobi};

// The coupled-row reconstruction kernels moved into the engine in PR 4;
// re-exported here so existing callers (and the cross-boundary tests) keep
// their import paths.
pub use feir_recovery::engine::{
    lossy_interpolate_rows, recover_direction_rows, recover_iterate_rows,
};

use crate::comm::{effective_ranks, HaloPlan, RankComm};
use crate::domains::RankDomains;
use crate::kernels;
use crate::partition::RankPartition;
use crate::rank_loop::{rank_resilient_solve, RankCtx};
use crate::rank_loop_merged::rank_merged_resilient_solve;

/// The protected vectors of a distributed solve, in registration order
/// (their [`VectorId`]s are 0..=4 within each rank's registry; `Z` exists
/// only for the preconditioned solver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtectedVector {
    /// The iterate `x`.
    X,
    /// The residual `g`.
    G,
    /// The search direction `d`.
    D,
    /// The matvec product `q = A·d`.
    Q,
    /// The preconditioned residual `z = M⁻¹g` (PCG only).
    Z,
}

impl ProtectedVector {
    /// The registry id of this vector inside any rank's fault domain.
    pub fn id(self) -> VectorId {
        VectorId(self as usize)
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ProtectedVector::X => "x",
            ProtectedVector::G => "g",
            ProtectedVector::D => "d",
            ProtectedVector::Q => "q",
            ProtectedVector::Z => "z",
        }
    }
}

/// One deterministic fault scripted against a solve: at the top of
/// `iteration`, page `page` of `vector` in `rank`'s fault domain is poisoned.
///
/// Scripted faults complement the live (timing-based) [`InjectionDriver`]
/// streams with exactly reproducible experiments — the same fault always
/// lands at the same point of the iteration space, which is what the policy
/// comparison tests and benchmark snapshots need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Solver iteration at whose start the fault is injected.
    pub iteration: usize,
    /// Rank whose fault domain is hit.
    pub rank: usize,
    /// Target vector.
    pub vector: ProtectedVector,
    /// Page index within the rank-local vector.
    pub page: usize,
}

/// Configuration of a distributed resilient solve.
#[derive(Debug, Clone)]
pub struct DistResilienceConfig {
    /// The recovery policy applied on every rank.
    pub policy: RecoveryPolicy,
    /// Page size in doubles of the per-rank fault domains (512 = one 4 KiB
    /// page, the paper's value; tests use smaller pages so small matrices
    /// span several pages per rank). For the PCG solver this is also the
    /// block size of the rank-local block-Jacobi preconditioner.
    pub page_doubles: usize,
    /// Convergence tolerance on the relative residual.
    pub tolerance: f64,
    /// Iteration cap (counting re-done iterations after rollbacks/restarts).
    pub max_iterations: usize,
    /// Deterministic faults injected at fixed iterations (see
    /// [`ScriptedFault`]). Ignored under [`RecoveryPolicy::Ideal`], which
    /// protects nothing.
    pub scripted_faults: Vec<ScriptedFault>,
}

impl Default for DistResilienceConfig {
    fn default() -> Self {
        Self {
            policy: RecoveryPolicy::Feir,
            page_doubles: feir_sparse::PAGE_DOUBLES,
            tolerance: 1e-10,
            max_iterations: 10_000,
            scripted_faults: Vec::new(),
        }
    }
}

impl DistResilienceConfig {
    /// Configuration for `policy` with every other field defaulted.
    pub fn for_policy(policy: RecoveryPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// Builder-style setter for the page size.
    pub fn with_page_doubles(mut self, page_doubles: usize) -> Self {
        self.page_doubles = page_doubles.max(1);
        self
    }

    /// Builder-style setter for the tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Builder-style setter for the iteration cap.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Builder-style setter for the scripted fault schedule.
    pub fn with_scripted_faults(mut self, faults: Vec<ScriptedFault>) -> Self {
        self.scripted_faults = faults;
        self
    }
}

/// One live [`FaultInjector`] stream per rank, attached to the per-rank
/// registries of a [`RankDomains`].
///
/// This is the distributed version of the paper's injection methodology
/// (Section 5.3): every rank has an independent error process against its own
/// memory, so a DUE is always attributable to exactly one rank.
pub struct InjectionDriver {
    injectors: Vec<FaultInjector>,
}

impl InjectionDriver {
    /// Starts one injector per rank with the given per-rank plans.
    ///
    /// # Panics
    /// Panics if `plans.len()` differs from the number of ranks.
    pub fn start(domains: &RankDomains, plans: Vec<InjectionPlan>) -> Self {
        assert_eq!(
            plans.len(),
            domains.num_ranks(),
            "need exactly one injection plan per rank"
        );
        let injectors = plans
            .into_iter()
            .enumerate()
            .map(|(rank, plan)| FaultInjector::start(domains.registry(rank), plan))
            .collect();
        Self { injectors }
    }

    /// Starts one injector per rank from a single template plan. Exponential
    /// plans get a per-rank seed offset so the streams are independent (the
    /// MTBE is per rank: divide a machine-wide frequency by the rank count
    /// before calling this).
    pub fn start_uniform(domains: &RankDomains, plan: &InjectionPlan) -> Self {
        let plans = (0..domains.num_ranks())
            .map(|rank| match plan {
                InjectionPlan::Exponential { mtbe, seed } => InjectionPlan::Exponential {
                    mtbe: *mtbe,
                    seed: seed.wrapping_add(rank as u64),
                },
                other => other.clone(),
            })
            .collect();
        Self::start(domains, plans)
    }

    /// Number of rank streams.
    pub fn num_ranks(&self) -> usize {
        self.injectors.len()
    }

    /// Pauses every rank's stream (see [`FaultInjector::pause`]).
    pub fn pause_all(&self) {
        for injector in &self.injectors {
            injector.pause();
        }
    }

    /// Resumes every rank's stream.
    pub fn resume_all(&self) {
        for injector in &self.injectors {
            injector.resume();
        }
    }

    /// Stops every stream and returns the per-rank injection reports, in
    /// rank order.
    pub fn stop(self) -> Vec<InjectionReport> {
        self.injectors
            .into_iter()
            .map(FaultInjector::stop)
            .collect()
    }
}

/// Outcome of a distributed resilient solve.
#[derive(Debug, Clone)]
pub struct DistResilientReport {
    /// Solver variant that ran (`"cg"` or `"pcg"`).
    pub solver: &'static str,
    /// The assembled solution.
    pub x: Vec<f64>,
    /// Iterations performed, counting re-done work after rollbacks/restarts.
    pub iterations: usize,
    /// Final relative residual, recomputed serially on the assembled
    /// solution (honest even when a policy corrupted the solver's own ε).
    pub relative_residual: f64,
    /// True if the explicit residual meets the tolerance.
    pub converged: bool,
    /// Number of simulated ranks.
    pub ranks: usize,
    /// Policy that ran.
    pub policy: RecoveryPolicy,
    /// Relative residual estimate at every convergence check. With zero
    /// faults this is bitwise-identical to
    /// [`DistSolveResult::residual_history`](crate::cg::DistSolveResult).
    pub residual_history: Vec<f64>,
    /// Per-rank fault attribution (registry counters; attach the injector
    /// view with [`DistResilientReport::absorb_injection_reports`]).
    pub faults: DistributedFaultReport,
    /// Pages reconstructed exactly or lossily across all ranks.
    pub pages_recovered: usize,
    /// Subset of `pages_recovered` reconstructed by the cross-rank coupled
    /// exchange (stencil-adjacent losses spanning a rank boundary that no
    /// single rank could solve alone).
    pub pages_coupled: usize,
    /// Pages blank-accepted because no recovery relation was solvable
    /// (simultaneous related losses — the paper "simply ignores" these).
    pub pages_ignored: usize,
    /// Values fetched across rank boundaries by the recovery protocol.
    pub cross_rank_values: usize,
    /// Checkpoint rollbacks (checkpoint policy only).
    pub rollbacks: usize,
    /// Restarts (Lossy Restart policy only).
    pub restarts: usize,
    /// Collectives rank 0 entered (see
    /// [`DistSolveResult::allreduces`](crate::cg::DistSolveResult)). For the
    /// merged solvers under the forward policies this stays at one per
    /// iteration even though the fault flag travels too — it rides inside
    /// the same vector allreduce.
    pub allreduces: u64,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// Per-rank trace streams, present when `FEIR_TRACE=spans` was active
    /// during the solve (see [`feir_trace`]). `None` otherwise.
    pub trace: Option<feir_trace::SolveTrace>,
}

impl DistResilientReport {
    /// Folds the per-rank injector reports returned by
    /// [`InjectionDriver::stop`] into the fault attribution.
    pub fn absorb_injection_reports(&mut self, reports: &[InjectionReport]) {
        self.faults.absorb_injection_reports(reports);
    }
}

/// Which engine instantiation a [`DistResilientSolver`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SolverKind {
    Cg,
    Pcg,
    CgMerged,
    PcgMerged,
}

impl SolverKind {
    fn name(self) -> &'static str {
        match self {
            SolverKind::Cg => "cg",
            SolverKind::Pcg => "pcg",
            SolverKind::CgMerged => "cg_merged",
            SolverKind::PcgMerged => "pcg_merged",
        }
    }

    fn preconditioned(self) -> bool {
        matches!(self, SolverKind::Pcg | SolverKind::PcgMerged)
    }
}

/// A distributed resilient solver bound to one system, one rank count and
/// one set of per-rank fault domains — CG or block-Jacobi PCG, both thin
/// instantiations of the engine's generic per-rank loop.
///
/// Create the solver first, then attach injection (an [`InjectionDriver`] on
/// [`DistResilientSolver::domains`], scripted faults in the config, or
/// direct [`feir_pagemem::PageRegistry::inject`] calls) and finally call
/// [`DistResilientSolver::solve`].
pub struct DistResilientSolver<'a> {
    a: &'a CsrMatrix,
    b: &'a [f64],
    ranks: usize,
    kind: SolverKind,
    config: DistResilienceConfig,
    partition: RankPartition,
    plan: HaloPlan,
    domains: RankDomains,
    pages: Vec<BlockPartition>,
}

/// The historical name of the CG instantiation;
/// [`DistResilientSolver::new`] still builds exactly that solver.
pub type DistResilientCg<'a> = DistResilientSolver<'a>;

impl<'a> DistResilientSolver<'a> {
    /// Creates the resilient **CG** solver (equivalent to
    /// [`DistResilientSolver::cg`]; kept as `new` for source compatibility
    /// with the pre-engine API).
    pub fn new(a: &'a CsrMatrix, b: &'a [f64], ranks: usize, config: DistResilienceConfig) -> Self {
        Self::cg(a, b, ranks, config)
    }

    /// Creates the resilient CG solver and registers the protected vectors
    /// (`x`, `g`, `d`, `q`) of every rank in its fault domain.
    ///
    /// # Panics
    /// Panics if the matrix is not square, `b` has the wrong length, or a
    /// scripted fault targets a rank/page/vector outside the solve.
    pub fn cg(a: &'a CsrMatrix, b: &'a [f64], ranks: usize, config: DistResilienceConfig) -> Self {
        Self::build(a, b, ranks, config, SolverKind::Cg)
    }

    /// Creates the resilient block-Jacobi **PCG** solver; the protected set
    /// gains the preconditioned residual `z`, and the preconditioner blocks
    /// match the fault pages (`config.page_doubles`) so the factorization
    /// needed to *recover* a lost `z` page is the one the preconditioner
    /// already owns — the reason the paper pairs page-sized Jacobi blocks
    /// with FEIR (Section 5.1).
    ///
    /// # Panics
    /// Same conditions as [`DistResilientSolver::cg`].
    pub fn pcg(a: &'a CsrMatrix, b: &'a [f64], ranks: usize, config: DistResilienceConfig) -> Self {
        Self::build(a, b, ranks, config, SolverKind::Pcg)
    }

    /// Creates the resilient **merged-reduction CG** solver (the pipelined
    /// Chronopoulos–Gear hot path of
    /// [`distributed_cg_merged`](crate::merged::distributed_cg_merged)). The
    /// protected ids map onto the merged vectors: `x` (iterate), `r`
    /// (residual, id `G`), `p` (direction, id `D`) and `s = A·p` (id `Q`);
    /// the forward policies fold their fault flag into the iteration's one
    /// vector allreduce, so the fault-free solve is bitwise-identical to the
    /// plain merged loop *and* still issues exactly one collective per
    /// iteration.
    ///
    /// # Panics
    /// Same conditions as [`DistResilientSolver::cg`].
    pub fn cg_merged(
        a: &'a CsrMatrix,
        b: &'a [f64],
        ranks: usize,
        config: DistResilienceConfig,
    ) -> Self {
        Self::build(a, b, ranks, config, SolverKind::CgMerged)
    }

    /// Creates the resilient **merged-reduction block-Jacobi PCG** solver
    /// (the engine twin of
    /// [`distributed_pcg_merged`](crate::merged::distributed_pcg_merged));
    /// the protected set gains `u = M⁻¹·r` at id `Z`, re-solved from the
    /// factorized diagonal blocks exactly like classic PCG's `z`.
    ///
    /// # Panics
    /// Same conditions as [`DistResilientSolver::cg`].
    pub fn pcg_merged(
        a: &'a CsrMatrix,
        b: &'a [f64],
        ranks: usize,
        config: DistResilienceConfig,
    ) -> Self {
        Self::build(a, b, ranks, config, SolverKind::PcgMerged)
    }

    fn build(
        a: &'a CsrMatrix,
        b: &'a [f64],
        ranks: usize,
        config: DistResilienceConfig,
        kind: SolverKind,
    ) -> Self {
        assert_eq!(a.rows(), a.cols(), "resilient solve needs a square matrix");
        assert_eq!(a.rows(), b.len(), "rhs length mismatch");
        let ranks = effective_ranks(a.rows(), ranks);
        let partition = RankPartition::new(a.rows(), ranks);
        let plan = HaloPlan::build(a, &partition);
        let domains = RankDomains::new(ranks);
        // The merged solvers reuse the classic ids for their renamed
        // vectors (G = r, D = p, Q = s, Z = u), so fault scripts and
        // campaigns target both families uniformly.
        let protected: &[ProtectedVector] = if kind.preconditioned() {
            &[
                ProtectedVector::X,
                ProtectedVector::G,
                ProtectedVector::D,
                ProtectedVector::Q,
                ProtectedVector::Z,
            ]
        } else {
            &[
                ProtectedVector::X,
                ProtectedVector::G,
                ProtectedVector::D,
                ProtectedVector::Q,
            ]
        };
        // Clamp like `distributed_pcg` does, so the bitwise-identity pairing
        // of the plain and resilient entry points holds for every input.
        let page_doubles = config.page_doubles.max(1);
        let mut pages = Vec::with_capacity(ranks);
        for rank in 0..ranks {
            let local = BlockPartition::new(partition.range(rank).len(), page_doubles);
            if config.policy.needs_protection() {
                let registry = domains.registry(rank);
                for vector in protected {
                    let id = registry
                        .register(format!("rank{rank}/{}", vector.name()), local.num_blocks());
                    debug_assert_eq!(id, vector.id());
                }
            }
            pages.push(local);
        }
        // A scripted fault outside the (possibly clamped) rank/page/vector
        // space would silently never fire and the experiment would measure a
        // fault-free run while claiming otherwise — reject it up front.
        if config.policy.needs_protection() {
            for fault in &config.scripted_faults {
                assert!(
                    fault.rank < ranks,
                    "scripted fault targets rank {} but the solve runs on {ranks} ranks \
                     (rank count is clamped to the problem size)",
                    fault.rank
                );
                assert!(
                    protected.contains(&fault.vector),
                    "scripted fault targets vector {} which this solver does not protect \
                     (z exists only for the preconditioned solver)",
                    fault.vector.name()
                );
                assert!(
                    fault.page < pages[fault.rank].num_blocks(),
                    "scripted fault targets page {} of {} on rank {}, which has {} pages",
                    fault.page,
                    fault.vector.name(),
                    fault.rank,
                    pages[fault.rank].num_blocks()
                );
            }
        }
        Self {
            a,
            b,
            ranks,
            kind,
            config,
            partition,
            plan,
            domains,
            pages,
        }
    }

    /// The per-rank fault domains targeted by this solve; hand them to an
    /// [`InjectionDriver`] for live injection.
    pub fn domains(&self) -> &RankDomains {
        &self.domains
    }

    /// Number of simulated ranks (after clamping to the problem size).
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The configuration in use.
    pub fn config(&self) -> &DistResilienceConfig {
        &self.config
    }

    /// The rank-local page partition of `rank`'s protected vectors.
    pub fn page_partition(&self, rank: usize) -> BlockPartition {
        self.pages[rank]
    }

    /// Runs the solve. Consumes the solver (the protected vectors are bound
    /// to this run's fault domains).
    pub fn solve(self) -> DistResilientReport {
        let start = Instant::now();
        let n = self.a.rows();
        let comms = RankComm::for_ranks(&self.plan, self.ranks);
        let kind = self.kind;

        let mut x = vec![0.0; n];
        let mut iterations = 0;
        let mut residual_history = Vec::new();
        let mut pages_recovered = 0;
        let mut pages_coupled = 0;
        let mut pages_ignored = 0;
        let mut cross_rank_values = 0;
        let mut rollbacks = 0;
        let mut restarts = 0;
        let mut allreduces = 0;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.ranks);
            for comm in comms {
                let rank = comm.rank();
                let ctx = RankCtx {
                    a: self.a,
                    b: self.b,
                    policy: self.config.policy,
                    tolerance: self.config.tolerance,
                    max_iterations: self.config.max_iterations,
                    rank,
                    own: self.partition.range(rank),
                    pages: self.pages[rank],
                    registry: self.domains.registry(rank),
                    partition: self.partition.clone(),
                    scripted: self
                        .config
                        .scripted_faults
                        .iter()
                        .filter(|f| f.rank == rank)
                        .copied()
                        .collect(),
                    throttle: Duration::ZERO,
                };
                handles.push(scope.spawn(move || {
                    feir_trace::set_thread_rank(rank as u32);
                    // The engine relations are built inside the rank thread:
                    // on a real machine the preconditioner factorization is
                    // rank-local work.
                    match kind {
                        SolverKind::Cg => {
                            let relations = CgRelations::new(ctx.a, ctx.b);
                            rank_resilient_solve(ctx, &relations, comm)
                        }
                        SolverKind::Pcg => {
                            let jacobi = LocalBlockJacobi::new(
                                ctx.a,
                                ctx.own.clone(),
                                ctx.pages.block_size(),
                                true,
                            )
                            .expect("rank-local block-Jacobi construction failed");
                            let relations = PcgRelations::new(ctx.a, ctx.b, &jacobi);
                            rank_resilient_solve(ctx, &relations, comm)
                        }
                        SolverKind::CgMerged => {
                            let relations = MergedCgRelations::new(ctx.a, ctx.b);
                            rank_merged_resilient_solve(ctx, &relations, comm)
                        }
                        SolverKind::PcgMerged => {
                            let jacobi = LocalBlockJacobi::new(
                                ctx.a,
                                ctx.own.clone(),
                                ctx.pages.block_size(),
                                true,
                            )
                            .expect("rank-local block-Jacobi construction failed");
                            let relations = MergedPcgRelations::new(ctx.a, ctx.b, &jacobi);
                            rank_merged_resilient_solve(ctx, &relations, comm)
                        }
                    }
                }));
            }
            for handle in handles {
                // On the in-process backend a comm error implies a dead
                // sibling thread, which the join reports first.
                let outcome = handle
                    .join()
                    .expect("rank thread panicked")
                    .expect("in-process comm failed");
                x[self.partition.range(outcome.rank)].copy_from_slice(&outcome.x_own);
                iterations = outcome.iterations;
                if outcome.rank == 0 {
                    residual_history = outcome.history;
                }
                pages_recovered += outcome.pages_recovered;
                pages_coupled += outcome.pages_coupled;
                pages_ignored += outcome.pages_ignored;
                cross_rank_values += outcome.cross_rank_values;
                // Rollbacks and restarts are global events: every rank
                // executes them together, so any one rank's count is the
                // machine count.
                if outcome.rank == 0 {
                    rollbacks = outcome.rollbacks;
                    restarts = outcome.restarts;
                    allreduces = outcome.allreduces;
                }
            }
        });

        // Explicit residual on the assembled solution: honest convergence
        // reporting even when blank-accepted pages corrupted the solver's ε.
        let relative_residual = kernels::explicit_relative_residual(self.a, self.b, &x);

        let mut faults = DistributedFaultReport::new(self.ranks);
        for counts in self.domains.per_rank_counts() {
            faults.set_registry_counts(
                counts.rank,
                counts.injected,
                counts.discovered,
                counts.recovered,
            );
        }

        DistResilientReport {
            solver: kind.name(),
            x,
            iterations,
            relative_residual,
            converged: relative_residual <= self.config.tolerance,
            ranks: self.ranks,
            policy: self.config.policy,
            residual_history,
            faults,
            pages_recovered,
            pages_coupled,
            pages_ignored,
            cross_rank_values,
            rollbacks,
            restarts,
            allreduces,
            elapsed: start.elapsed(),
            trace: crate::cg::collect_thread_trace(),
        }
    }
}

/// One-shot form of the resilient CG: builds the solver and runs it with no
/// live injection (scripted faults in `config` still apply).
pub fn distributed_resilient_cg(
    a: &CsrMatrix,
    b: &[f64],
    ranks: usize,
    config: DistResilienceConfig,
) -> DistResilientReport {
    DistResilientSolver::cg(a, b, ranks, config).solve()
}

/// One-shot form of the resilient block-Jacobi PCG (see
/// [`DistResilientSolver::pcg`]). With zero faults the solve is
/// bitwise-identical to [`distributed_pcg`](crate::pcg::distributed_pcg) at
/// the same page size.
pub fn distributed_resilient_pcg(
    a: &CsrMatrix,
    b: &[f64],
    ranks: usize,
    config: DistResilienceConfig,
) -> DistResilientReport {
    DistResilientSolver::pcg(a, b, ranks, config).solve()
}

/// One-shot form of the resilient merged-reduction CG (see
/// [`DistResilientSolver::cg_merged`]). With zero faults the solve is
/// bitwise-identical to
/// [`distributed_cg_merged`](crate::merged::distributed_cg_merged), and the
/// forward policies still issue exactly one allreduce per fault-free
/// iteration — the fault flag rides inside the vector collective. Extra
/// scalar collectives appear only where unavoidable: on *faulted* forward
/// rounds (the blank-acceptance rebuild flag) and in the checkpoint/lossy
/// baselines' end-of-iteration sweeps.
pub fn distributed_resilient_cg_merged(
    a: &CsrMatrix,
    b: &[f64],
    ranks: usize,
    config: DistResilienceConfig,
) -> DistResilientReport {
    DistResilientSolver::cg_merged(a, b, ranks, config).solve()
}

/// One-shot form of the resilient merged-reduction block-Jacobi PCG (see
/// [`DistResilientSolver::pcg_merged`]). With zero faults the solve is
/// bitwise-identical to
/// [`distributed_pcg_merged`](crate::merged::distributed_pcg_merged) at the
/// same page size.
pub fn distributed_resilient_pcg_merged(
    a: &CsrMatrix,
    b: &[f64],
    ranks: usize,
    config: DistResilienceConfig,
) -> DistResilientReport {
    DistResilientSolver::pcg_merged(a, b, ranks, config).solve()
}
