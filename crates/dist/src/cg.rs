//! Block-row distributed Conjugate Gradient over simulated ranks.
//!
//! Each rank owns a contiguous block of rows (and the matching slices of
//! `x`, `g`, `d`, `q`), exchanges the halo of the search direction before its
//! local SpMV and contributes to the two allreduces of every iteration —
//! exactly the communication structure of the paper's MPI+OmpSs solver
//! (Section 3.4), with channels standing in for MPI.

use feir_sparse::{CsrMatrix, SpmvBackend};

use crate::comm::{effective_ranks, CommError, HaloPlan, RankComm};
use crate::domains::RankDomains;
use crate::kernels;
use crate::partition::RankPartition;

/// Reliability-sublayer counters of one solve, summed over every rank's
/// links. All zeros for the in-process backend, which has no links — the
/// counters only tick on the socket mesh of [`crate::process`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Data frames handed to the wire (every attempt, retransmits included).
    pub data_frames: u64,
    /// Frames retransmitted after an acknowledgement timeout.
    pub retransmits: u64,
    /// Chaos-injected frame faults (drops, duplicates, delays, corruptions,
    /// truncations) on outgoing links.
    pub injected_faults: u64,
    /// Inbound frames rejected by the integrity gate (bad envelope/decode).
    pub rejected: u64,
    /// Duplicate data frames received and suppressed by sequence tracking.
    pub dup_received: u64,
}

impl NetStats {
    /// The wire encoding of these counters (the `link` array of a
    /// `TraceDump` frame), in field order.
    pub fn to_wire(self) -> [u64; 5] {
        [
            self.data_frames,
            self.retransmits,
            self.injected_faults,
            self.rejected,
            self.dup_received,
        ]
    }

    /// Decodes the `link` array of a `TraceDump` frame.
    pub fn from_wire(link: [u64; 5]) -> NetStats {
        NetStats {
            data_frames: link[0],
            retransmits: link[1],
            injected_faults: link[2],
            rejected: link[3],
            dup_received: link[4],
        }
    }

    /// Adds another rank's counters into this sum.
    pub fn accumulate(&mut self, other: NetStats) {
        self.data_frames += other.data_frames;
        self.retransmits += other.retransmits;
        self.injected_faults += other.injected_faults;
        self.rejected += other.rejected;
        self.dup_received += other.dup_received;
    }
}

/// Outcome of a distributed solve.
#[derive(Debug, Clone)]
pub struct DistSolveResult {
    /// The assembled solution (gathered from every rank).
    pub x: Vec<f64>,
    /// Iterations performed (identical on every rank by construction).
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖₂ / ‖b‖₂`, recomputed serially on
    /// the assembled solution.
    pub relative_residual: f64,
    /// Number of simulated ranks that executed the solve.
    pub ranks: usize,
    /// True if the solver reported convergence before the iteration cap.
    pub converged: bool,
    /// Relative residual estimate `√ε / ‖b‖₂` at every convergence check, in
    /// iteration order (identical on every rank because every ε comes out of
    /// the deterministic rank-ordered allreduce). The resilient solver's
    /// zero-fault history is bitwise-identical to this one.
    pub residual_history: Vec<f64>,
    /// Collectives rank 0 entered during the solve (scalar and vector
    /// allreduces; halo exchanges are point-to-point and excluded). Classic
    /// CG pays two per iteration and PCG three; the merged-reduction
    /// variants pay exactly one.
    pub allreduces: u64,
    /// Reliability-layer frame counters summed over every rank (all zeros
    /// for the channel-backed in-process transport).
    pub net: NetStats,
    /// Merged per-rank trace streams, present when the solve ran with
    /// `FEIR_TRACE=spans` and at least one event was recorded. Export with
    /// [`feir_trace::SolveTrace::chrome_json`] or fold into a summary with
    /// [`feir_trace::SolveTrace::summary`].
    pub trace: Option<feir_trace::SolveTrace>,
}

impl DistSolveResult {
    /// True if the solver converged to the requested tolerance.
    pub fn converged(&self) -> bool {
        self.converged
    }
}

/// Solves `A x = b` with CG distributed over `ranks` simulated ranks.
///
/// The iteration is algebraically identical to the serial CG (same update
/// order, deterministic rank-ordered reductions), so the iterate agrees with
/// the shared-memory solver to round-off. Each rank registers its owned
/// pages in its own [`RankDomains`] registry, giving every rank an
/// independent fault domain; injection into those domains is the distributed
/// recovery work tracked in ROADMAP.md.
///
/// # Panics
/// Panics if the matrix is not square or `b` has the wrong length.
pub fn distributed_cg(
    a: &CsrMatrix,
    b: &[f64],
    ranks: usize,
    tolerance: f64,
    max_iterations: usize,
) -> DistSolveResult {
    assert_eq!(a.rows(), a.cols(), "distributed CG needs a square matrix");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let domains = RankDomains::new(effective_ranks(a.rows(), ranks));
    // One memory page per owned vector per rank is the coarsest useful fault
    // granularity here; finer page splits are a RankDomains parameter.
    for rank in 0..domains.num_ranks() {
        domains.register_rank_vectors(rank, &["x", "g", "d", "q"], 1);
    }
    run_ranks(a, b, ranks, tolerance, move |ctx| {
        rank_cg(a, b, ctx.comm, &ctx.partition, tolerance, max_iterations)
    })
}

/// Per-rank context handed to the rank closures of [`run_ranks`].
pub(crate) struct RankLaunch {
    pub(crate) comm: RankComm,
    pub(crate) partition: RankPartition,
}

/// What every per-rank loop reports: `(rank, owned x block, iterations,
/// residual history, collectives entered)`.
pub(crate) type RankOutcome = (usize, Vec<f64>, usize, Vec<f64>, u64);

/// Shared fork/join scaffolding of every *plain* distributed solver (CG,
/// PCG and their merged variants): one thread per rank, assembly of the
/// owned blocks, rank-0 history/collective collection and the
/// explicit-residual report. Pure orchestration — no kernel runs here, so
/// routing a solver through it cannot affect any numeric result.
pub(crate) fn run_ranks<F>(
    a: &CsrMatrix,
    b: &[f64],
    ranks: usize,
    tolerance: f64,
    body: F,
) -> DistSolveResult
where
    F: Fn(RankLaunch) -> Result<RankOutcome, CommError> + Sync,
{
    let n = a.rows();
    let ranks = effective_ranks(n, ranks);
    let partition = RankPartition::new(n, ranks);
    let plan = HaloPlan::build(a, &partition);
    let comms = RankComm::for_ranks(&plan, ranks);

    let mut x = vec![0.0; n];
    let mut iterations = 0;
    let mut residual_history = Vec::new();
    let mut allreduces = 0;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranks);
        for comm in comms {
            let partition = partition.clone();
            let body = &body;
            handles.push(scope.spawn(move || {
                feir_trace::set_thread_rank(comm.rank() as u32);
                body(RankLaunch { comm, partition })
            }));
        }
        for handle in handles {
            // The in-process backend only disconnects when a sibling rank
            // thread died, which the join below reports first anyway.
            let (rank, local_x, iters, history, collectives) = handle
                .join()
                .expect("rank thread panicked")
                .expect("in-process comm failed");
            x[partition.range(rank)].copy_from_slice(&local_x);
            iterations = iters;
            if rank == 0 {
                residual_history = history;
                allreduces = collectives;
            }
        }
    });

    // Explicit residual on the assembled solution.
    let relative_residual = kernels::explicit_relative_residual(a, b, &x);
    DistSolveResult {
        x,
        iterations,
        relative_residual,
        ranks,
        converged: relative_residual <= tolerance,
        residual_history,
        allreduces,
        net: NetStats::default(),
        trace: collect_thread_trace(),
    }
}

/// Drains the rank-tagged thread sinks of this process into a merged trace;
/// `None` when tracing is below `spans` or nothing was recorded. Shared by
/// every in-process solver (the rank threads all tagged themselves in their
/// spawn closures).
pub(crate) fn collect_thread_trace() -> Option<feir_trace::SolveTrace> {
    if feir_trace::level() != feir_trace::TraceLevel::Spans {
        return None;
    }
    let trace = feir_trace::SolveTrace::new(feir_trace::drain_all());
    (!trace.is_empty()).then_some(trace)
}

/// The per-rank CG loop, backend-agnostic: the same body runs on in-process
/// channels and on the socket mesh of the process transport (which is what
/// the worker in [`crate::process`] calls).
pub(crate) fn rank_cg(
    a: &CsrMatrix,
    b: &[f64],
    comm: RankComm,
    partition: &RankPartition,
    tolerance: f64,
    max_iterations: usize,
) -> Result<RankOutcome, CommError> {
    let rank = comm.rank();
    let own = partition.range(rank);
    let local_n = own.len();
    // Rank-local storage backend over the owned row block: each rank
    // analyzes and (possibly) converts only its own rows, one-shot before
    // the loop. The SELL kernels are bitwise-identical to CSR's, so the
    // format never changes the solve.
    let op = SpmvBackend::select_rows(a, own.clone());

    let mut x = vec![0.0; local_n];
    let mut g: Vec<f64> = b[own.clone()].to_vec(); // g = b − A·0
    let mut d = vec![0.0; local_n];
    let mut q = vec![0.0; local_n];
    // Private full-length buffer for the halo exchange of d.
    let mut d_full = vec![0.0; a.cols()];

    let norm_b = kernels::global_rhs_norm(&comm, &b[own.clone()])?;
    let mut eps = comm.allreduce_sum(kernels::norm2_squared(&g))?;
    let mut eps_old = f64::INFINITY;
    let mut iterations = 0;
    let mut history = Vec::new();

    for _ in 0..max_iterations {
        let rel = eps.max(0.0).sqrt() / norm_b;
        history.push(rel);
        if rel <= tolerance {
            break;
        }
        iterations += 1;
        let _it = feir_trace::span(feir_trace::Phase::Iteration);

        let beta = kernels::beta_ratio(eps, eps_old);
        // d ⇐ g + β·d, then ship the halo of d.
        kernels::xpay(&g, beta, &mut d);
        d_full[own.clone()].copy_from_slice(&d);
        comm.exchange_halo(&mut d_full)?;

        // q ⇐ A·d over the owned rows, fused with the local ⟨d, q⟩ partial
        // (one sweep; bitwise-identical to the unfused pair).
        let dq_local = {
            let _probe = feir_trace::span(feir_trace::Phase::Spmv);
            op.spmv_dot(a, &d_full, &mut q)
        };
        let dq = comm.allreduce_sum(dq_local)?;
        if kernels::is_breakdown(dq) {
            break;
        }
        let alpha = eps / dq;
        kernels::axpy(alpha, &d, &mut x);
        // g ⇐ g − α·q fused with the local ‖g‖² partial of the next ε.
        eps_old = eps;
        eps = comm.allreduce_sum(kernels::axpy_norm2(-alpha, &q, &mut g))?;
    }
    let collectives = comm.collectives();
    Ok((rank, x, iterations, history, collectives))
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_solvers::{cg, SolveOptions};
    use feir_sparse::generators::{manufactured_rhs, poisson_2d};

    #[test]
    fn distributed_cg_matches_serial_cg() {
        let a = poisson_2d(12);
        let (x_true, b) = manufactured_rhs(&a, 5);
        let serial = cg(&a, &b, None, &SolveOptions::default().with_tolerance(1e-10));
        for ranks in [1usize, 2, 3, 7] {
            let dist = distributed_cg(&a, &b, ranks, 1e-10, 10_000);
            assert!(dist.converged(), "{ranks} ranks did not converge");
            assert_eq!(dist.ranks, ranks);
            assert_eq!(dist.iterations, serial.iterations, "{ranks} ranks");
            for (u, v) in dist.x.iter().zip(&x_true) {
                assert!((u - v).abs() < 1e-7, "{ranks} ranks: {u} vs {v}");
            }
        }
    }

    #[test]
    fn residual_history_is_recorded_and_rank_count_invariant() {
        let a = poisson_2d(10);
        let (_, b) = manufactured_rhs(&a, 3);
        let one = distributed_cg(&a, &b, 1, 1e-10, 10_000);
        assert_eq!(one.residual_history.len(), one.iterations + 1);
        assert!(one.residual_history.windows(2).any(|w| w[1] < w[0]));
        assert!(*one.residual_history.last().unwrap() <= 1e-10);
        for ranks in [2usize, 5] {
            let multi = distributed_cg(&a, &b, ranks, 1e-10, 10_000);
            // The deterministic rank-ordered allreduce keeps the iteration
            // count identical; the per-rank partial sums differ, so the
            // histories agree to round-off rather than bitwise.
            assert_eq!(multi.residual_history.len(), one.residual_history.len());
            for (u, v) in multi.residual_history.iter().zip(&one.residual_history) {
                assert!((u - v).abs() <= 1e-9 * (1.0 + v.abs()), "{u} vs {v}");
            }
        }
    }

    #[test]
    fn more_ranks_than_rows_is_clamped() {
        let a = poisson_2d(2); // 4 unknowns
        let (_, b) = manufactured_rhs(&a, 1);
        let dist = distributed_cg(&a, &b, 64, 1e-12, 1_000);
        assert!(dist.converged());
        assert_eq!(dist.ranks, 4);
    }

    #[test]
    fn iteration_cap_is_honoured() {
        let a = poisson_2d(10);
        let (_, b) = manufactured_rhs(&a, 2);
        let dist = distributed_cg(&a, &b, 4, 1e-14, 3);
        assert_eq!(dist.iterations, 3);
        assert!(!dist.converged());
    }
}
