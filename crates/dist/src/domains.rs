//! Per-rank fault domains: one [`PageRegistry`] per simulated rank.
//!
//! On a distributed machine a DUE is reported by the node that owns the
//! page, and only that node's data is lost — the failure domain is the rank.
//! [`RankDomains`] models that: every rank gets an independent registry, so
//! an injection targets exactly one rank and the others keep clean state.
//! This is the substrate the distributed FEIR/AFEIR recovery of Section 3.4
//! plugs into (tracked in ROADMAP.md).

use std::sync::Arc;

use feir_pagemem::{PageRegistry, VectorId};

/// One independent [`PageRegistry`] per simulated rank.
#[derive(Debug, Clone)]
pub struct RankDomains {
    registries: Vec<Arc<PageRegistry>>,
}

impl RankDomains {
    /// Creates `ranks` empty fault domains.
    ///
    /// # Panics
    /// Panics if `ranks == 0`.
    pub fn new(ranks: usize) -> Self {
        assert!(ranks > 0, "need at least one rank");
        Self {
            registries: (0..ranks).map(|_| Arc::new(PageRegistry::new())).collect(),
        }
    }

    /// Number of fault domains.
    pub fn num_ranks(&self) -> usize {
        self.registries.len()
    }

    /// The registry of one rank (shareable with a
    /// [`feir_pagemem::FaultInjector`] bound to that rank).
    pub fn registry(&self, rank: usize) -> Arc<PageRegistry> {
        Arc::clone(&self.registries[rank])
    }

    /// Registers the named vectors with `pages_each` pages in `rank`'s
    /// domain; returns their ids in order.
    pub fn register_rank_vectors(
        &self,
        rank: usize,
        names: &[&str],
        pages_each: usize,
    ) -> Vec<VectorId> {
        let registry = &self.registries[rank];
        names
            .iter()
            .map(|name| registry.register(format!("rank{rank}/{name}"), pages_each))
            .collect()
    }

    /// Sum of pages injected across every rank.
    pub fn total_injected(&self) -> usize {
        self.registries.iter().map(|r| r.injected_count()).sum()
    }

    /// Sum of faults discovered across every rank.
    pub fn total_discovered(&self) -> usize {
        self.registries.iter().map(|r| r.discovered_count()).sum()
    }

    /// Sum of pages recovered across every rank.
    pub fn total_recovered(&self) -> usize {
        self.registries.iter().map(|r| r.recovered_count()).sum()
    }

    /// True if every page of every rank is healthy.
    pub fn all_healthy(&self) -> bool {
        self.registries.iter().all(|r| r.all_healthy())
    }

    /// Resets every rank's registry.
    pub fn reset(&self) {
        for registry in &self.registries {
            registry.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_pagemem::{AccessOutcome, PageStatus};

    #[test]
    fn faults_are_contained_to_one_rank() {
        let domains = RankDomains::new(3);
        for rank in 0..3 {
            domains.register_rank_vectors(rank, &["x", "g"], 4);
        }
        let target = domains.registry(1);
        let ids = (0..target.num_vectors()).map(VectorId).collect::<Vec<_>>();
        assert!(target.inject(ids[0], 2));
        assert_eq!(domains.total_injected(), 1);
        // Ranks 0 and 2 are untouched.
        assert!(domains.registry(0).all_healthy());
        assert!(domains.registry(2).all_healthy());
        assert!(!domains.all_healthy());
        // The owning rank discovers and recovers the fault locally.
        assert_eq!(target.on_access(ids[0], 2), AccessOutcome::FaultDiscovered);
        target.mark_recovered(ids[0], 2);
        assert_eq!(target.probe(ids[0], 2), PageStatus::Healthy);
        assert!(domains.all_healthy());
        assert_eq!(domains.total_discovered(), 1);
        assert_eq!(domains.total_recovered(), 1);
    }

    #[test]
    fn names_are_scoped_by_rank() {
        let domains = RankDomains::new(2);
        let ids = domains.register_rank_vectors(1, &["d"], 2);
        assert_eq!(domains.registry(1).name(ids[0]), "rank1/d");
        assert_eq!(domains.registry(0).num_vectors(), 0);
    }

    #[test]
    fn reset_clears_every_rank() {
        let domains = RankDomains::new(2);
        let ids = domains.register_rank_vectors(0, &["x"], 1);
        domains.registry(0).inject(ids[0], 0);
        domains.reset();
        assert!(domains.all_healthy());
        assert_eq!(domains.total_injected(), 0);
    }
}
