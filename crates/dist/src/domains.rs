//! Per-rank fault domains: one [`PageRegistry`] per simulated rank.
//!
//! On a distributed machine a DUE is reported by the node that owns the
//! page, and only that node's data is lost — the failure domain is the rank.
//! [`RankDomains`] models that: every rank gets an independent registry, so
//! an injection targets exactly one rank and the others keep clean state.
//! This is the substrate the distributed FEIR/AFEIR recovery of Section 3.4
//! plugs into (tracked in ROADMAP.md).

use std::sync::Arc;

use feir_pagemem::{PageRegistry, VectorId};

/// Snapshot of one rank's fault counters, so campaign reports can attribute
/// faults to the rank that owns the affected pages (not just machine totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankFaultCounts {
    /// The rank these counters belong to.
    pub rank: usize,
    /// Injections that landed on a healthy page of this rank.
    pub injected: usize,
    /// Faults discovered by this rank on access.
    pub discovered: usize,
    /// Pages of this rank marked recovered.
    pub recovered: usize,
}

impl RankFaultCounts {
    /// True if this rank saw at least one effective injection.
    pub fn was_hit(&self) -> bool {
        self.injected > 0
    }
}

/// One independent [`PageRegistry`] per simulated rank.
#[derive(Debug, Clone)]
pub struct RankDomains {
    registries: Vec<Arc<PageRegistry>>,
}

impl RankDomains {
    /// Creates `ranks` empty fault domains.
    ///
    /// # Panics
    /// Panics if `ranks == 0`.
    pub fn new(ranks: usize) -> Self {
        assert!(ranks > 0, "need at least one rank");
        Self {
            registries: (0..ranks).map(|_| Arc::new(PageRegistry::new())).collect(),
        }
    }

    /// Number of fault domains.
    pub fn num_ranks(&self) -> usize {
        self.registries.len()
    }

    /// The registry of one rank (shareable with a
    /// [`feir_pagemem::FaultInjector`] bound to that rank).
    pub fn registry(&self, rank: usize) -> Arc<PageRegistry> {
        Arc::clone(&self.registries[rank])
    }

    /// Registers the named vectors with `pages_each` pages in `rank`'s
    /// domain; returns their ids in order.
    pub fn register_rank_vectors(
        &self,
        rank: usize,
        names: &[&str],
        pages_each: usize,
    ) -> Vec<VectorId> {
        let registry = &self.registries[rank];
        names
            .iter()
            .map(|name| registry.register(format!("rank{rank}/{name}"), pages_each))
            .collect()
    }

    /// Sum of pages injected across every rank.
    pub fn total_injected(&self) -> usize {
        self.registries.iter().map(|r| r.injected_count()).sum()
    }

    /// Sum of faults discovered across every rank.
    pub fn total_discovered(&self) -> usize {
        self.registries.iter().map(|r| r.discovered_count()).sum()
    }

    /// Sum of pages recovered across every rank.
    pub fn total_recovered(&self) -> usize {
        self.registries.iter().map(|r| r.recovered_count()).sum()
    }

    /// Fault counters of one rank.
    pub fn rank_counts(&self, rank: usize) -> RankFaultCounts {
        let registry = &self.registries[rank];
        RankFaultCounts {
            rank,
            injected: registry.injected_count(),
            discovered: registry.discovered_count(),
            recovered: registry.recovered_count(),
        }
    }

    /// Per-rank fault counter breakdown across every rank, in rank order.
    pub fn per_rank_counts(&self) -> Vec<RankFaultCounts> {
        (0..self.num_ranks()).map(|r| self.rank_counts(r)).collect()
    }

    /// Number of ranks with at least one effective injection.
    pub fn faulty_rank_count(&self) -> usize {
        self.registries
            .iter()
            .filter(|r| r.injected_count() > 0)
            .count()
    }

    /// True if every page of every rank is healthy.
    pub fn all_healthy(&self) -> bool {
        self.registries.iter().all(|r| r.all_healthy())
    }

    /// Resets one rank's registry (pages healthy, counters zeroed), leaving
    /// the other ranks untouched.
    pub fn reset_rank(&self, rank: usize) {
        self.registries[rank].reset();
    }

    /// Resets every rank's registry.
    pub fn reset(&self) {
        for registry in &self.registries {
            registry.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_pagemem::{AccessOutcome, PageStatus};

    #[test]
    fn faults_are_contained_to_one_rank() {
        let domains = RankDomains::new(3);
        for rank in 0..3 {
            domains.register_rank_vectors(rank, &["x", "g"], 4);
        }
        let target = domains.registry(1);
        let ids = (0..target.num_vectors()).map(VectorId).collect::<Vec<_>>();
        assert!(target.inject(ids[0], 2));
        assert_eq!(domains.total_injected(), 1);
        // Ranks 0 and 2 are untouched.
        assert!(domains.registry(0).all_healthy());
        assert!(domains.registry(2).all_healthy());
        assert!(!domains.all_healthy());
        // The owning rank discovers and recovers the fault locally.
        assert_eq!(target.on_access(ids[0], 2), AccessOutcome::FaultDiscovered);
        target.mark_recovered(ids[0], 2);
        assert_eq!(target.probe(ids[0], 2), PageStatus::Healthy);
        assert!(domains.all_healthy());
        assert_eq!(domains.total_discovered(), 1);
        assert_eq!(domains.total_recovered(), 1);
    }

    #[test]
    fn names_are_scoped_by_rank() {
        let domains = RankDomains::new(2);
        let ids = domains.register_rank_vectors(1, &["d"], 2);
        assert_eq!(domains.registry(1).name(ids[0]), "rank1/d");
        assert_eq!(domains.registry(0).num_vectors(), 0);
    }

    #[test]
    fn reset_clears_every_rank() {
        let domains = RankDomains::new(2);
        let ids = domains.register_rank_vectors(0, &["x"], 1);
        domains.registry(0).inject(ids[0], 0);
        domains.reset();
        assert!(domains.all_healthy());
        assert_eq!(domains.total_injected(), 0);
    }

    #[test]
    fn per_rank_counts_attribute_faults_to_the_owning_rank() {
        let domains = RankDomains::new(3);
        for rank in 0..3 {
            domains.register_rank_vectors(rank, &["x"], 4);
        }
        let target = domains.registry(2);
        target.inject(VectorId(0), 1);
        target.inject(VectorId(0), 3);
        target.on_access(VectorId(0), 1);
        target.mark_recovered(VectorId(0), 1);

        let counts = domains.per_rank_counts();
        assert_eq!(counts.len(), 3);
        assert_eq!(counts[0], domains.rank_counts(0));
        assert!(!counts[0].was_hit() && !counts[1].was_hit());
        assert_eq!(counts[2].rank, 2);
        assert_eq!(counts[2].injected, 2);
        assert_eq!(counts[2].discovered, 1);
        assert_eq!(counts[2].recovered, 1);
        assert_eq!(domains.faulty_rank_count(), 1);
        // The totals stay consistent with the breakdown.
        assert_eq!(
            domains.total_injected(),
            counts.iter().map(|c| c.injected).sum::<usize>()
        );
    }

    #[test]
    fn reset_rank_clears_only_that_rank() {
        let domains = RankDomains::new(2);
        for rank in 0..2 {
            domains.register_rank_vectors(rank, &["x"], 2);
        }
        domains.registry(0).inject(VectorId(0), 0);
        domains.registry(1).inject(VectorId(0), 1);
        domains.reset_rank(0);
        assert!(domains.registry(0).all_healthy());
        assert_eq!(domains.rank_counts(0).injected, 0);
        assert_eq!(domains.rank_counts(1).injected, 1);
        assert!(!domains.all_healthy());
    }
}
