//! Rank worker executable of the multi-process transport: one instance per
//! rank, spawned by [`feir_dist::process::spawn_workers`], parameterised
//! through the `FEIR_WORKER_*` environment and reporting a `feir-wire` frame
//! on stdout. See [`feir_dist::process`] for the protocol.

fn main() -> std::process::ExitCode {
    feir_dist::process::worker_main()
}
