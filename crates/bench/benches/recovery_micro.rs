//! Criterion micro-benchmarks of the recovery primitives of Table 1: direct
//! (lhs) recomputation, inverse (rhs) diagonal-block solves, the Lossy
//! block-Jacobi interpolation and the checkpoint write they are compared
//! against. These are the per-error costs behind Figures 3–5.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use feir_recovery::checkpoint::{CheckpointStore, CheckpointTarget};
use feir_recovery::{lossy_interpolate_block, BlockRecovery};
use feir_sparse::blocking::{BlockPartition, DiagonalBlocks};
use feir_sparse::generators::{manufactured_rhs, poisson_2d};

fn bench_block_recoveries(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_recovery");
    group.sample_size(20);
    let a = poisson_2d(64); // 4096 unknowns
    let n = a.rows();
    let partition = BlockPartition::new(n, 512);
    let recovery = BlockRecovery::new(&a, partition, true);
    let (x, b) = manufactured_rhs(&a, 11);
    let mut g = vec![0.0; n];
    a.spmv(&x, &mut g);
    for (gi, bi) in g.iter_mut().zip(&b) {
        *gi = bi - *gi;
    }
    let mut q = vec![0.0; n];
    a.spmv(&x, &mut q);
    let block = 3;
    let len = partition.range(block).len();

    group.bench_function("lhs_matvec", |bench| {
        let mut out = vec![0.0; len];
        bench.iter(|| recovery.recover_matvec_lhs(black_box(&a), black_box(&x), block, &mut out))
    });
    group.bench_function("rhs_block_solve", |bench| {
        let mut out = vec![0.0; len];
        bench.iter(|| {
            recovery.recover_matvec_rhs(
                black_box(&a),
                black_box(&q),
                black_box(&x),
                block,
                &mut out,
            )
        })
    });
    group.bench_function("iterate_rhs", |bench| {
        let mut out = vec![0.0; len];
        bench.iter(|| {
            recovery.recover_iterate_rhs(
                black_box(&a),
                black_box(&b),
                black_box(&g),
                black_box(&x),
                block,
                &mut out,
            )
        })
    });
    group.bench_function("lossy_interpolation", |bench| {
        let blocks = DiagonalBlocks::factorize(&a, partition, true).unwrap();
        bench.iter(|| {
            lossy_interpolate_block(black_box(&a), black_box(&b), black_box(&x), &blocks, block)
        })
    });
    // The cost of pre-factorizing all diagonal blocks (paid once per solve).
    group.bench_function("factorize_diagonal_blocks", |bench| {
        bench.iter(|| BlockRecovery::new(black_box(&a), partition, true))
    });
    group.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(10);
    let n = 1 << 15;
    let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let d: Vec<f64> = (0..n).map(|i| -(i as f64)).collect();
    group.bench_function("memory_write", |bench| {
        let mut store = CheckpointStore::new(CheckpointTarget::Memory);
        bench.iter(|| store.checkpoint(black_box(1), black_box(&x), black_box(&d), &[1.0, 2.0]))
    });
    group.bench_function("disk_write", |bench| {
        let mut store = CheckpointStore::on_temp_disk();
        bench.iter(|| store.checkpoint(black_box(1), black_box(&x), black_box(&d), &[1.0, 2.0]))
    });
    group.finish();
}

criterion_group!(recovery_micro, bench_block_recoveries, bench_checkpoint);
criterion_main!(recovery_micro);
