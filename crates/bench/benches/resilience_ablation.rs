//! Ablation benchmarks of the design choices DESIGN.md calls out:
//!
//! * FEIR (recoveries in the critical path) vs AFEIR (overlapped) vs the
//!   ideal CG, with no errors — the Table-2 overheads as a Criterion bench;
//! * block-Jacobi page-sized blocks (512) vs mismatched block sizes;
//! * checkpoint interval sensitivity (200 vs 1000 iterations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use feir_recovery::{RecoveryPolicy, ResilienceConfig, ResilientCg};
use feir_solvers::SolveOptions;
use feir_sparse::blocking::BlockPartition;
use feir_sparse::generators::{manufactured_rhs, poisson_2d};
use feir_sparse::BlockJacobi;

fn solve_once(a: &feir_sparse::CsrMatrix, b: &[f64], policy: RecoveryPolicy) {
    let config = ResilienceConfig {
        policy,
        page_doubles: 256,
        preconditioned: false,
        checkpoint_on_disk: false,
        threads: None,
    };
    let options = SolveOptions::default()
        .with_tolerance(1e-8)
        .with_max_iterations(20_000);
    let report = ResilientCg::new(a, b, config).solve(&options);
    assert!(report.converged());
}

fn bench_policy_overheads(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_overhead_no_errors");
    group.sample_size(10);
    let a = poisson_2d(40);
    let (_, b) = manufactured_rhs(&a, 17);
    for policy in [
        RecoveryPolicy::Ideal,
        RecoveryPolicy::Afeir,
        RecoveryPolicy::Feir,
        RecoveryPolicy::Checkpoint { interval: 1000 },
        RecoveryPolicy::Checkpoint { interval: 200 },
    ] {
        let name = match policy {
            RecoveryPolicy::Checkpoint { interval } => format!("ckpt_{interval}"),
            other => other.name().to_string(),
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &policy,
            |bench, &policy| bench.iter(|| solve_once(black_box(&a), black_box(&b), policy)),
        );
    }
    group.finish();
}

fn bench_block_size_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_jacobi_block_size");
    group.sample_size(10);
    let a = poisson_2d(48);
    let n = a.rows();
    let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    for block in [128usize, 256, 512] {
        let bj = BlockJacobi::new(&a, BlockPartition::new(n, block), true).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(block), &bj, |bench, bj| {
            let mut z = vec![0.0; n];
            bench.iter(|| bj.apply(black_box(&r), black_box(&mut z)))
        });
    }
    group.finish();
}

criterion_group!(ablation, bench_policy_overheads, bench_block_size_ablation);
criterion_main!(ablation);
