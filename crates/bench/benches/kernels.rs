//! Criterion micro-benchmarks of the solver kernels that dominate a CG
//! iteration (SpMV, dot products, axpy) — the "useful work" baseline all
//! resilience overheads in Tables 2–3 are measured against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use feir_solvers::{cg, SolveOptions};
use feir_sparse::generators::{manufactured_rhs, poisson_2d, poisson_3d_27pt};
use feir_sparse::{vecops, SellMatrix};

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    group.sample_size(20);
    for n in [32usize, 64] {
        let a = poisson_2d(n);
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; a.rows()];
        group.bench_with_input(BenchmarkId::new("serial", a.rows()), &a, |bench, a| {
            bench.iter(|| a.spmv(black_box(&x), black_box(&mut y)))
        });
        group.bench_with_input(BenchmarkId::new("rayon", a.rows()), &a, |bench, a| {
            bench.iter(|| a.spmv_parallel(black_box(&x), black_box(&mut y)))
        });
    }
    // The HPCG-style 27-point operator of the scaling study.
    let a = poisson_3d_27pt(16);
    let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64).cos()).collect();
    let mut y = vec![0.0; a.rows()];
    group.bench_function("serial/27pt_16", |bench| {
        bench.iter(|| a.spmv(black_box(&x), black_box(&mut y)))
    });
    group.finish();
}

/// SELL-C-σ against CSR on the same operators (bitwise-identical results,
/// different memory layout): the deltas here are what the per-matrix format
/// analyzer trades on.
fn bench_spmv_sell(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv_sell");
    group.sample_size(20);
    for n in [32usize, 64] {
        let a = poisson_2d(n);
        let sell = SellMatrix::from_csr(&a).expect("SELL conversion failed");
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; a.rows()];
        group.bench_with_input(BenchmarkId::new("csr", a.rows()), &a, |bench, a| {
            bench.iter(|| a.spmv(black_box(&x), black_box(&mut y)))
        });
        group.bench_with_input(BenchmarkId::new("sell", a.rows()), &sell, |bench, sell| {
            bench.iter(|| sell.spmv(black_box(&x), black_box(&mut y)))
        });
        group.bench_with_input(
            BenchmarkId::new("sell_rayon", a.rows()),
            &sell,
            |bench, sell| bench.iter(|| sell.spmv_parallel(black_box(&x), black_box(&mut y))),
        );
    }
    let a = poisson_3d_27pt(16);
    let sell = SellMatrix::from_csr(&a).expect("SELL conversion failed");
    let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64).cos()).collect();
    let mut y = vec![0.0; a.rows()];
    group.bench_function("sell/27pt_16", |bench| {
        bench.iter(|| sell.spmv(black_box(&x), black_box(&mut y)))
    });
    group.finish();
}

fn bench_vector_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("vecops");
    group.sample_size(20);
    let n = 1 << 16;
    let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.001).collect();
    let mut y: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    group.bench_function("dot", |bench| {
        bench.iter(|| vecops::dot(black_box(&x), black_box(&y)))
    });
    group.bench_function("axpy", |bench| {
        bench.iter(|| vecops::axpy(black_box(1.0001), black_box(&x), black_box(&mut y)))
    });
    group.finish();
}

fn bench_cg_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("cg_solve");
    group.sample_size(10);
    let a = poisson_2d(48);
    let (_, b) = manufactured_rhs(&a, 3);
    let options = SolveOptions::default().with_tolerance(1e-8);
    group.bench_function("poisson_48x48", |bench| {
        bench.iter(|| cg(black_box(&a), black_box(&b), None, black_box(&options)))
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_spmv,
    bench_spmv_sell,
    bench_vector_kernels,
    bench_cg_solve
);
criterion_main!(kernels);
