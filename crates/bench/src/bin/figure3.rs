//! Figure 3: convergence of CG under the different resilience methods with a
//! single error injected into the iterate `x` part-way through the solve
//! (the paper uses matrix `thermal2` and injects at t = 30 s).
//!
//! Prints one `(time, residual)` series per method, suitable for plotting
//! with gnuplot / matplotlib.

use feir_bench::HarnessConfig;
use feir_core::{measure_ideal, run_with_single_error, PaperMatrix, RecoveryPolicy};
use feir_solvers::history::ConvergenceHistory;

fn print_series(name: &str, history: &ConvergenceHistory) {
    println!("## series {name}");
    println!("# method iteration time_s relative_residual");
    for (iteration, residual, elapsed) in &history.samples {
        println!(
            "{name} {iteration} {:.6} {:.6e}",
            elapsed.as_secs_f64(),
            residual.max(1e-300)
        );
    }
    println!();
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let matrix = PaperMatrix::Thermal2;
    let (a, b) = cfg.build_system(matrix);
    println!("# Figure 3: convergence with a single error in x at 50% of the ideal solve time");
    println!("# matrix proxy: {} (n = {})", matrix.name(), a.rows());

    let resilience_ref = cfg.resilience(RecoveryPolicy::Ideal, false);
    let ideal = measure_ideal(&a, &b, &resilience_ref, &cfg.options);
    println!(
        "# ideal: {} iterations, {:.3}s",
        ideal.iterations,
        ideal.elapsed.as_secs_f64()
    );
    print_series("Ideal", &ideal.history);

    let methods = [
        (RecoveryPolicy::Afeir, "AFEIR"),
        (RecoveryPolicy::Feir, "FEIR"),
        (RecoveryPolicy::LossyRestart, "Lossy"),
        (RecoveryPolicy::Checkpoint { interval: 1000 }, "ckpt"),
    ];
    for (policy, name) in methods {
        let resilience = cfg.resilience(policy, false);
        // Flat page 0 = first page of x, matching the paper's injection target.
        let report =
            run_with_single_error(&a, &b, &resilience, &cfg.options, ideal.elapsed, 0.5, 0);
        println!(
            "# {name}: {} iterations, {:.3}s, converged={}, faults={}, recovered={}, rollbacks={}, restarts={}",
            report.iterations,
            report.elapsed.as_secs_f64(),
            report.converged(),
            report.faults_discovered,
            report.pages_recovered,
            report.rollbacks,
            report.restarts
        );
        print_series(name, &report.history);
    }
    println!("# expected shape (paper): FEIR/AFEIR continue smoothly; Lossy drops then converges slower; ckpt rolls back.");
}
