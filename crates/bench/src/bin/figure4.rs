//! Figure 4: performance slowdown of the five resilience methods under
//! increasing normalised error frequencies (1, 2, 5, 10, 20, 50 expected
//! errors per ideal solve time), per matrix, plus the CG and PCG means.
//!
//! By default a reduced sweep runs (three matrices, three rates, few reps) so
//! the harness finishes in minutes; set `FEIR_FULL=1` for the paper's full
//! 270-experiment grid and `FEIR_PCG=1` to add the preconditioned sweep.

use std::time::Duration;

use feir_bench::{aggregate_slowdowns, compared_policies, HarnessConfig};
use feir_core::{measure_ideal, run_with_errors, PaperMatrix, SlowdownRecord};

fn main() {
    let cfg = HarnessConfig::from_env();
    let full = std::env::var("FEIR_FULL")
        .map(|v| v == "1")
        .unwrap_or(false);
    let with_pcg = std::env::var("FEIR_PCG").map(|v| v == "1").unwrap_or(false);

    let matrices: Vec<PaperMatrix> = if full {
        PaperMatrix::ALL.to_vec()
    } else {
        vec![PaperMatrix::Qa8fm, PaperMatrix::Cfd2, PaperMatrix::Thermal2]
    };
    let rates: Vec<f64> = if full {
        cfg.error_rates.clone()
    } else {
        vec![1.0, 5.0, 20.0]
    };

    println!("# Figure 4: slowdown vs ideal CG under normalised error rates");
    println!(
        "# matrices={} rates={:?} reps={} scale={} (FEIR_FULL=1 for the full grid)",
        matrices.len(),
        rates,
        cfg.repetitions,
        cfg.scale
    );
    println!(
        "{:<15} {:>5} {:<8} {:>10} {:>8} {:>6}",
        "matrix", "rate", "method", "slowdown", "faults", "conv"
    );

    let mut variants = vec![("CG", false)];
    if with_pcg {
        variants.push(("PCG", true));
    }

    for (variant, preconditioned) in variants {
        let mut per_method_all: Vec<(String, Vec<f64>)> = Vec::new();
        for &matrix in &matrices {
            let (a, b) = cfg.build_system(matrix);
            let ideal_resilience = cfg.resilience(feir_core::RecoveryPolicy::Ideal, preconditioned);
            // Best-of-reps ideal time as the normalisation reference τ.
            let mut ideal_time = Duration::MAX;
            for _ in 0..cfg.repetitions {
                let ideal = measure_ideal(&a, &b, &ideal_resilience, &cfg.options);
                assert!(ideal.converged());
                ideal_time = ideal_time.min(ideal.elapsed);
            }
            for &rate in &rates {
                for (policy, name) in compared_policies(1000) {
                    let mut slowdowns = Vec::new();
                    let mut faults = 0;
                    let mut converged = true;
                    for rep in 0..cfg.repetitions {
                        let experiment = cfg.experiment(
                            policy,
                            preconditioned,
                            rate,
                            0x5EED + rep as u64 * 7919 + rate as u64,
                        );
                        let report = run_with_errors(&a, &b, &experiment, ideal_time);
                        slowdowns.push(report.slowdown_percent(ideal_time).max(0.0));
                        faults += report.faults_discovered;
                        converged &= report.converged();
                    }
                    let mean = aggregate_slowdowns(&slowdowns);
                    let record = SlowdownRecord {
                        matrix: matrix.name().to_string(),
                        policy: name.to_string(),
                        normalized_error_rate: rate,
                        slowdown_percent: mean,
                        faults_discovered: faults,
                        converged,
                        iterations: 0,
                    };
                    println!(
                        "{:<15} {:>5} {:<8} {:>9.2}% {:>8} {:>6}",
                        record.matrix,
                        rate,
                        record.policy,
                        record.slowdown_percent,
                        record.faults_discovered,
                        record.converged
                    );
                    if let Some(slot) = per_method_all.iter_mut().find(|(m, _)| *m == record.policy)
                    {
                        slot.1.push(record.slowdown_percent);
                    } else {
                        per_method_all.push((record.policy.clone(), vec![record.slowdown_percent]));
                    }
                }
            }
        }
        println!("\n# {variant} mean slowdown per method (harmonic mean over all cells)");
        for (method, values) in &per_method_all {
            println!(
                "{variant:<4} mean {:<8} {:>9.2}%",
                method,
                aggregate_slowdowns(values)
            );
        }
        println!();
    }
    println!("# expected shape (paper, rate=1, CG): AFEIR 3.59% < FEIR 5.37% < Lossy 8.4% << ckpt ~55% < trivial");
    println!("# and at rate=50: FEIR (29.7%) overtakes AFEIR (50.5%) — the FEIR/AFEIR trade-off.");
}
