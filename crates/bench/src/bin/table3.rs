//! Table 3: increase of time spent per state (imbalance / runtime / useful)
//! for the FEIR and AFEIR methods relative to the ideal CG, no errors.
//!
//! Paper values: AFEIR 4.30 / 8.11 / 1.90 (%), FEIR 25.06 / 7.84 / 2.78 (%).

use feir_bench::HarnessConfig;
use feir_core::{measure_ideal, run_overhead, PaperMatrix, RecoveryPolicy, RunReport};
use feir_runtime::StateBreakdown;

fn breakdown(report: &RunReport) -> StateBreakdown {
    StateBreakdown {
        useful_fraction: report.time.useful_fraction(),
        runtime_fraction: report.time.runtime_fraction(),
        idle_fraction: report.time.idle_fraction(),
    }
}

fn main() {
    let cfg = HarnessConfig::from_env();
    println!("# Table 3: increase of time spent per state for FEIR methods (no errors)");
    println!(
        "{:<8} {:>11} {:>9} {:>8}",
        "method", "imbalance", "runtime", "useful"
    );

    // Accumulate fractions over the full matrix set so one fast matrix does
    // not dominate, mirroring the paper's aggregated table.
    for (policy, name) in [
        (RecoveryPolicy::Afeir, "AFEIR"),
        (RecoveryPolicy::Feir, "FEIR"),
    ] {
        let mut ideal_acc = StateBreakdown::default();
        let mut method_acc = StateBreakdown::default();
        let mut count = 0.0;
        for matrix in PaperMatrix::ALL {
            let (a, b) = cfg.build_system(matrix);
            let resilience = cfg.resilience(policy, false);
            let ideal = measure_ideal(&a, &b, &resilience, &cfg.options);
            let run = run_overhead(&a, &b, &resilience, &cfg.options);
            let i = breakdown(&ideal);
            let m = breakdown(&run);
            ideal_acc.useful_fraction += i.useful_fraction;
            ideal_acc.runtime_fraction += i.runtime_fraction;
            ideal_acc.idle_fraction += i.idle_fraction;
            method_acc.useful_fraction += m.useful_fraction;
            method_acc.runtime_fraction += m.runtime_fraction;
            method_acc.idle_fraction += m.idle_fraction;
            count += 1.0;
        }
        for acc in [&mut ideal_acc, &mut method_acc] {
            acc.useful_fraction /= count;
            acc.runtime_fraction /= count;
            acc.idle_fraction /= count;
        }
        // The ideal baseline has no recovery/idle accounting of its own;
        // report the absolute fractions of the method next to the increases.
        let (imbalance, runtime, useful) = method_acc.increase_over(&ideal_acc);
        println!(
            "{:<8} {:>10.2}% {:>8.2}% {:>7.2}%   (absolute: useful {:.1}%, runtime {:.1}%, idle {:.1}%)",
            name,
            imbalance,
            runtime,
            useful,
            method_acc.useful_fraction * 100.0,
            method_acc.runtime_fraction * 100.0,
            method_acc.idle_fraction * 100.0,
        );
    }
    println!("\n# paper reference: AFEIR 4.30/8.11/1.90  FEIR 25.06/7.84/2.78 (%)");
    println!("# FEIR should show a clearly larger imbalance increase than AFEIR (critical-path recoveries).");
}
