//! Figure 5: strong-scaling speedup of the resilient MPI+OmpSs CG on the
//! 27-point 3-D Poisson problem, 64 → 1024 cores, 1 and 2 errors per run.
//!
//! Two parts are printed:
//!
//! 1. a *functional* check: the block-row distributed CG of `feir-dist` is run
//!    on a scaled-down 27-point stencil over several simulated ranks and
//!    compared against the shared-memory solver (validating the communication
//!    structure of Section 3.4);
//! 2. the calibrated analytic scaling model that regenerates the Figure-5
//!    speedup curves for every policy (see DESIGN.md for the substitution).

use feir_dist::{distributed_cg, ScalingModel};
use feir_solvers::{cg, SolveOptions};
use feir_sparse::generators::{manufactured_rhs, poisson_3d_27pt};

fn main() {
    // Part 1: functional distributed CG on the paper's operator (scaled down).
    let grid = std::env::var("FEIR_GRID")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12usize);
    let a = poisson_3d_27pt(grid);
    let (_, b) = manufactured_rhs(&a, 27);
    println!(
        "# Figure 5 — part 1: functional distributed CG (27-point stencil, {}³ = {} unknowns)",
        grid,
        a.rows()
    );
    let serial = cg(&a, &b, None, &SolveOptions::default().with_tolerance(1e-8));
    println!(
        "serial      iterations={} residual={:.2e} time={:.3}s",
        serial.iterations,
        serial.relative_residual,
        serial.elapsed.as_secs_f64()
    );
    for ranks in [2usize, 4, 8] {
        let start = std::time::Instant::now();
        let dist = distributed_cg(&a, &b, ranks, 1e-8, 50_000);
        println!(
            "ranks={ranks:<3}   iterations={} residual={:.2e} time={:.3}s",
            dist.iterations,
            dist.relative_residual,
            start.elapsed().as_secs_f64()
        );
        assert!(dist.relative_residual <= 1e-7, "distributed CG diverged");
    }

    // Part 2: the calibrated scaling model (paper-scale 512³ problem).
    let model = ScalingModel::default();
    println!("\n# Figure 5 — part 2: speedup w.r.t. ideal CG on 64 cores (27-pt Poisson, 512³)");
    println!(
        "# ideal parallel efficiency at 1024 cores: {:.1}% (paper: 80.17%)",
        model.ideal_efficiency(1024) * 100.0
    );
    for errors in [1usize, 2] {
        println!("\n## {errors} error(s) per run");
        println!(
            "{:<8} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "method", 64, 128, 256, 512, 1024
        );
        for (policy, points) in model.figure5_series(errors) {
            let name = policy.name();
            let row: Vec<String> = points
                .iter()
                .map(|p| format!("{:>6.2}", p.speedup))
                .collect();
            println!("{:<8} {}", name, row.join(" "));
        }
    }
    println!("\n# paper reference @1024 cores: 1 error AFEIR 10.01 / FEIR 7.50 / Lossy 8.17; 2 errors AFEIR 6.03 / FEIR 7.65 / Lossy 4.82");
}
