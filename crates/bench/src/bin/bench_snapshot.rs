//! Reproducible benchmark snapshot: times the solver kernels (serial,
//! parallel and fused), the `rayon::join` overlap primitive, the classic and
//! merged-reduction solves and the allreduce batching, then emits one JSON
//! object on stdout. The committed `BENCH_PR<N>.json` files embed runs of
//! this tool; regenerate with
//!
//! ```text
//! cargo run --release -p feir-bench --bin bench_snapshot > snapshot.json
//! ```
//!
//! Pass `--smoke` for a seconds-scale run on tiny sizes (used by CI to keep
//! the tool from bit-rotting). `FEIR_NUM_THREADS` sizes the pool as usual.
//!
//! `--compare <baseline.json>` additionally diffs the fresh run against a
//! committed snapshot: every scenario present in both runs gets a delta
//! line, and the process exits non-zero if any shared scenario regressed by
//! more than the threshold (default 25%, override with `--threshold <pct>`
//! — CI's smoke leg uses a loose threshold because microsecond-scale
//! timings on shared runners are noisy).

use std::hint::black_box;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use feir_dist::{
    distributed_resilient_cg, distributed_resilient_cg_merged, distributed_resilient_pcg,
    distributed_resilient_pcg_merged, solve_with_processes, spawn_workers_with, spawned_as_worker,
    worker_main, ChaosConfig, DistResilienceConfig, HaloPlan, ProcessSpec, ProtectedVector,
    RankComm, ScriptedFault, Transport, WorkerOptions,
};
use feir_recovery::RecoveryPolicy;
use feir_solvers::{cg, cg_merged, SolveOptions};
use feir_sparse::generators::{anisotropic_2d, manufactured_rhs, poisson_2d};
use feir_sparse::{fused, vecops, CooMatrix, CsrMatrix, SellMatrix, ENV_SPMV_FORMAT};

/// Target measurement time per benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(250);
const SMOKE_MEASURE: Duration = Duration::from_millis(25);

/// One measured scenario: the bulk mean plus log-bucketed tail percentiles
/// from a separate individually-timed sample pass.
struct BenchRow {
    name: String,
    mean_ns: f64,
    iters: u64,
    p50_ns: u64,
    p99_ns: u64,
}

/// Per-scenario cap on the individually-timed sample pass that feeds the
/// percentile histogram (the bulk mean loop is unbounded by this).
const MAX_SAMPLES: u64 = 512;

/// A tridiagonal matrix with every 64th row widened to `spike` extra
/// entries: high row-length variance, the worst case for SELL padding.
fn spiked_rows(n: usize, spike: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0).expect("in bounds");
        if i + 1 < n {
            coo.push(i, i + 1, -1.0).expect("in bounds");
            coo.push(i + 1, i, -1.0).expect("in bounds");
        }
        if i % 64 == 0 {
            for k in 0..spike {
                let j = (i + 2 + k * 97) % n;
                if j != i && j != i + 1 && (j + 1) != i {
                    coo.push(i, j, 0.01).expect("in bounds");
                }
            }
        }
    }
    coo.to_csr()
}

struct Harness {
    budget: Duration,
    results: Vec<BenchRow>,
}

impl Harness {
    /// Times `routine`, recording the mean per-iteration nanoseconds plus
    /// p50/p99 from a bounded sample pass. The mean comes from the same
    /// bulk-timed loop as always — the sampling pass runs afterwards so
    /// per-call `Instant::now()` overhead never leaks into `mean_ns` (the
    /// value the `--compare` regression gate judges).
    fn bench<R>(&mut self, name: &str, mut routine: impl FnMut() -> R) {
        // Calibrate with a single run, then spend the budget.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        // Tail pass: individually timed runs into a log-bucketed histogram.
        // Percentiles are bucket upper bounds (≤2× overestimate) — good for
        // spotting tail blowups, not for sub-bucket precision.
        let mut hist = feir_trace::Histogram::new();
        for _ in 0..iters.min(MAX_SAMPLES) {
            let start = Instant::now();
            black_box(routine());
            hist.observe(start.elapsed().as_nanos() as u64);
        }
        let (p50_ns, p99_ns) = (hist.p50(), hist.p99());
        eprintln!("{name:<40} {mean_ns:>12.0} ns/iter  ({iters} iters, p50≤{p50_ns} p99≤{p99_ns})");
        self.results.push(BenchRow {
            name: name.to_string(),
            mean_ns,
            iters,
            p50_ns,
            p99_ns,
        });
    }
}

/// Extracts `(name, mean_ns)` pairs from a snapshot emitted by this tool.
/// Hand-rolled (this environment vendors no JSON crate): one bench row per
/// line, `"name": "…"` and `"mean_ns": …` fields in order.
///
/// A line that carries a bench name but no parsable `mean_ns` is a **hard
/// error**: the old behaviour (skip the row) meant a scenario whose timing
/// was serialized in a form the scanner mistokenized — `1.2e+05` truncated
/// at the `+`, `3E5` truncated at the `E` — silently vanished from the
/// `--compare` gate, which then passed vacuously for that scenario.
fn parse_snapshot(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\":") else {
            continue;
        };
        let rest = &line[name_at + 7..];
        let Some(open) = rest.find('"') else { continue };
        let Some(close) = rest[open + 1..].find('"') else {
            continue;
        };
        let name = &rest[open + 1..open + 1 + close];
        let Some(mean_at) = line.find("\"mean_ns\":") else {
            return Err(format!("bench row for {name:?} has no \"mean_ns\" field"));
        };
        let tail = &line[mean_at + 10..];
        // Full float token: digits, '.', both exponent markers and both
        // signs ('+' appears inside exponents like 1.2e+05).
        let token: String = tail
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        match token.parse::<f64>() {
            Ok(mean_ns) => rows.push((name.to_string(), mean_ns)),
            Err(_) => {
                return Err(format!(
                    "bench row for {name:?} has unparsable mean_ns token {token:?}"
                ))
            }
        }
    }
    Ok(rows)
}

/// Prints per-scenario deltas against `baseline` and returns
/// `Err(shared_count)` when nothing could be compared — a gate that finds
/// zero shared scenarios must fail loudly, not pass vacuously (a renamed
/// scenario set, a non-snapshot file or a drifted emitter format would
/// otherwise silently disable the regression check). On success returns the
/// names of shared scenarios that regressed by more than `threshold_pct`.
fn compare_against(
    results: &[BenchRow],
    baseline: &[(String, f64)],
    threshold_pct: f64,
) -> Result<Vec<String>, usize> {
    let mut regressions = Vec::new();
    let mut shared = 0;
    eprintln!(
        "\n{:<44} {:>12} {:>12} {:>8}",
        "scenario", "base ns", "now ns", "delta"
    );
    for BenchRow { name, mean_ns, .. } in results {
        let Some((_, base_ns)) = baseline.iter().find(|(b, _)| b == name) else {
            continue;
        };
        shared += 1;
        let delta_pct = (mean_ns / base_ns - 1.0) * 100.0;
        let flag = if delta_pct > threshold_pct {
            "  << REGRESSION"
        } else {
            ""
        };
        eprintln!("{name:<44} {base_ns:>12.0} {mean_ns:>12.0} {delta_pct:>+7.1}%{flag}");
        if delta_pct > threshold_pct {
            regressions.push(name.clone());
        }
    }
    eprintln!(
        "compared {shared} shared scenarios, threshold {threshold_pct}%: {} regression(s)",
        regressions.len()
    );
    if shared == 0 {
        return Err(shared);
    }
    Ok(regressions)
}

fn main() -> ExitCode {
    // The process-transport scenarios re-execute this binary as the rank
    // workers (same self-exec trick as `examples/dist_process.rs`).
    if spawned_as_worker() {
        return worker_main();
    }
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let compare_path = flag_value("--compare");
    let threshold_pct: f64 = flag_value("--threshold")
        .map(|v| v.parse().expect("--threshold takes a percentage"))
        .unwrap_or(25.0);
    let mut h = Harness {
        budget: if smoke { SMOKE_MEASURE } else { TARGET_MEASURE },
        results: Vec::new(),
    };

    // Warm the pool up front so lazy worker spawning doesn't skew the first
    // benchmark's calibration pass.
    let warm: Vec<f64> = (0..vecops::DOT_CHUNK * 2).map(|i| i as f64).collect();
    black_box(vecops::dot_parallel(&warm, &warm));

    let spmv_sizes: &[usize] = if smoke { &[16] } else { &[32, 64, 96] };
    for &side in spmv_sizes {
        let a = poisson_2d(side);
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; a.rows()];
        h.bench(&format!("spmv/serial/{}", a.rows()), || {
            a.spmv(black_box(&x), black_box(&mut y))
        });
        h.bench(&format!("spmv/parallel/{}", a.rows()), || {
            a.spmv_parallel(black_box(&x), black_box(&mut y))
        });
    }

    // PR 9: SELL-C-σ against CSR on three structure classes — the banded
    // Poisson and convection–diffusion operators the sliced format is built
    // for, and a high-row-variance matrix that punishes SELL padding (the
    // case the format analyzer routes back to CSR).
    {
        let side = if smoke { 16 } else { 96 };
        let scenarios: Vec<(String, CsrMatrix)> = vec![
            (format!("poisson_{side}x{side}"), poisson_2d(side)),
            (
                format!("convdiff_{side}x{side}"),
                anisotropic_2d(side, 0.05),
            ),
            (
                format!("spiked_{}", side * side),
                spiked_rows(side * side, 64),
            ),
        ];
        for (name, a) in &scenarios {
            let sell = SellMatrix::from_csr(a).expect("SELL conversion failed");
            let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.13).sin()).collect();
            let mut y = vec![0.0; a.rows()];
            h.bench(&format!("spmv/csr/{name}"), || {
                a.spmv(black_box(&x), black_box(&mut y))
            });
            h.bench(&format!("spmv/sell/{name}"), || {
                sell.spmv(black_box(&x), black_box(&mut y))
            });
            // The fused spmv+dot is the kernel the CG iteration actually
            // runs; SELL's lane-parallel accumulators overlap the dot chain
            // where the CSR fold serializes on it, so this is where the
            // sliced layout pays off on scalar hosts.
            h.bench(&format!("spmv_dot/csr/{name}"), || {
                black_box(fused::spmv_dot(
                    black_box(a),
                    black_box(&x),
                    black_box(&mut y),
                ))
            });
            h.bench(&format!("spmv_dot/sell/{name}"), || {
                black_box(sell.spmv_dot(black_box(&x), black_box(&mut y)))
            });
        }
        // End-to-end: the same CG solve with the storage format forced each
        // way (the results are bitwise-identical; only the matvec engine —
        // and its memory traffic — changes).
        let a = anisotropic_2d(if smoke { 12 } else { 48 }, 0.05);
        let (_, b) = manufactured_rhs(&a, 3);
        let options = SolveOptions::default().with_tolerance(1e-8);
        for format in ["csr", "sell"] {
            std::env::set_var(ENV_SPMV_FORMAT, format);
            h.bench(&format!("cg/{format}/convdiff_{}", a.rows()), || {
                black_box(cg(black_box(&a), black_box(&b), None, black_box(&options)))
            });
        }
        std::env::remove_var(ENV_SPMV_FORMAT);
    }

    let n = if smoke { 1 << 12 } else { 1 << 17 };
    let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.001).collect();
    let z: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let mut y = z.clone();
    h.bench(&format!("dot/serial/{n}"), || {
        black_box(vecops::dot(black_box(&x), black_box(&z)))
    });
    h.bench(&format!("dot/parallel/{n}"), || {
        black_box(vecops::dot_parallel(black_box(&x), black_box(&z)))
    });
    h.bench(&format!("axpy/serial/{n}"), || {
        vecops::axpy(black_box(1.0001), black_box(&x), black_box(&mut y))
    });
    h.bench(&format!("axpy/parallel/{n}"), || {
        vecops::axpy_parallel(black_box(1.0001), black_box(&x), black_box(&mut y))
    });

    // PR 5: the fused hot-path kernels against the unfused compositions
    // they replace (bitwise-identical results, one memory sweep instead of
    // two). The deltas here are the per-iteration traffic the fused CG/PCG
    // paths save.
    h.bench(&format!("axpy_norm2/unfused/{n}"), || {
        vecops::axpy(black_box(1.0001), black_box(&x), black_box(&mut y));
        black_box(vecops::norm2_squared(black_box(&y)))
    });
    h.bench(&format!("axpy_norm2/fused/{n}"), || {
        black_box(fused::axpy_norm2(
            black_box(1.0001),
            black_box(&x),
            black_box(&mut y),
        ))
    });
    h.bench(&format!("dotn/separate/3x{n}"), || {
        let a = vecops::dot(black_box(&x), black_box(&z));
        let b = vecops::dot(black_box(&x), black_box(&x));
        let c = vecops::dot(black_box(&z), black_box(&y));
        black_box([a, b, c])
    });
    h.bench(&format!("dotn/fused/3x{n}"), || {
        black_box(fused::dotn(&[
            (black_box(&x), black_box(&z)),
            (black_box(&x), black_box(&x)),
            (black_box(&z), black_box(&y)),
        ]))
    });
    {
        let a = poisson_2d(if smoke { 16 } else { 48 });
        let xs: Vec<f64> = (0..a.cols()).map(|i| (i as f64).sin()).collect();
        let mut ys = vec![0.0; a.rows()];
        h.bench(&format!("spmv_dot/unfused/{}", a.rows()), || {
            a.spmv(black_box(&xs), black_box(&mut ys));
            black_box(vecops::dot(black_box(&xs), black_box(&ys)))
        });
        h.bench(&format!("spmv_dot/fused/{}", a.rows()), || {
            black_box(fused::spmv_dot(&a, black_box(&xs), black_box(&mut ys)))
        });
    }

    // The AFEIR overlap primitive: a join of two tiny closures measures the
    // fork/sync overhead that used to be a full OS-thread spawn per call.
    h.bench("join/overhead", || {
        let (a, b) = rayon::join(|| black_box(1u64) + 1, || black_box(2u64) + 2);
        black_box(a + b)
    });

    let side = if smoke { 16 } else { 48 };
    let a = poisson_2d(side);
    let (_, b) = manufactured_rhs(&a, 3);
    let options = SolveOptions::default()
        .with_tolerance(1e-8)
        .with_parallel(false);
    h.bench(&format!("cg/serial/poisson_{side}x{side}"), || {
        black_box(cg(black_box(&a), black_box(&b), None, black_box(&options)))
    });
    let options_par = SolveOptions::default()
        .with_tolerance(1e-8)
        .with_parallel(true);
    h.bench(&format!("cg/parallel/poisson_{side}x{side}"), || {
        black_box(cg(
            black_box(&a),
            black_box(&b),
            None,
            black_box(&options_par),
        ))
    });
    // PR 5: the merged-reduction (Chronopoulos–Gear) CG — one fused
    // spmv_dot, one fused update sweep, both scalars from a single
    // reduction pass.
    h.bench(&format!("cg_merged/serial/poisson_{side}x{side}"), || {
        black_box(cg_merged(
            black_box(&a),
            black_box(&b),
            None,
            black_box(&options),
        ))
    });

    // Distributed recovery scenarios (PR 3): the fault-free ideal distributed
    // CG against FEIR and AFEIR absorbing a deterministic burst of DUEs
    // (iterate, direction and residual pages across the ranks, including a
    // boundary page whose recovery fetches values from the neighbour rank).
    // The FEIR-vs-AFEIR gap is the recovery overhead the paper's asynchrony
    // removes from the critical path.
    let side = if smoke { 12 } else { 24 };
    let a = poisson_2d(side);
    let (_, b) = manufactured_rhs(&a, 5);
    for ranks in [2usize, 4] {
        let dist_config = |policy: RecoveryPolicy, faulted: bool| {
            let faults = if faulted {
                vec![
                    ScriptedFault {
                        iteration: 3,
                        rank: ranks - 1,
                        vector: ProtectedVector::X,
                        page: 0,
                    },
                    ScriptedFault {
                        iteration: 5,
                        rank: 0,
                        vector: ProtectedVector::D,
                        page: 1,
                    },
                    ScriptedFault {
                        iteration: 8,
                        rank: ranks / 2,
                        vector: ProtectedVector::G,
                        page: 0,
                    },
                ]
            } else {
                Vec::new()
            };
            DistResilienceConfig::for_policy(policy)
                .with_page_doubles(32)
                .with_tolerance(1e-8)
                .with_max_iterations(20_000)
                .with_scripted_faults(faults)
        };
        h.bench(&format!("dist_cg/ideal/ranks{ranks}"), || {
            black_box(distributed_resilient_cg(
                black_box(&a),
                black_box(&b),
                ranks,
                dist_config(RecoveryPolicy::Ideal, false),
            ))
        });
        for (label, policy) in [
            ("feir", RecoveryPolicy::Feir),
            ("afeir", RecoveryPolicy::Afeir),
        ] {
            h.bench(&format!("dist_recovery/{label}/ranks{ranks}"), || {
                let report = distributed_resilient_cg(
                    black_box(&a),
                    black_box(&b),
                    ranks,
                    dist_config(policy, true),
                );
                assert!(report.converged && report.pages_recovered >= 3);
                black_box(report)
            });
        }
        // PR 4: the PCG instantiation of the same engine — ideal baseline
        // plus FEIR/AFEIR absorbing the same deterministic DUE burst (the
        // preconditioner halves the iteration count, so the per-solve cost
        // of recovery shifts toward the reconstruction itself).
        h.bench(&format!("dist_pcg/ideal/ranks{ranks}"), || {
            black_box(distributed_resilient_pcg(
                black_box(&a),
                black_box(&b),
                ranks,
                dist_config(RecoveryPolicy::Ideal, false),
            ))
        });
        for (label, policy) in [
            ("feir", RecoveryPolicy::Feir),
            ("afeir", RecoveryPolicy::Afeir),
        ] {
            h.bench(&format!("dist_recovery_pcg/{label}/ranks{ranks}"), || {
                let report = distributed_resilient_pcg(
                    black_box(&a),
                    black_box(&b),
                    ranks,
                    dist_config(policy, true),
                );
                assert!(report.converged && report.pages_recovered >= 3);
                black_box(report)
            });
        }
        // PR 5: the merged-reduction hot path — one batched allreduce per
        // iteration (asserted), started split-phase and overlapped with the
        // halo exchange + matvec. Compare against dist_cg/ideal and
        // dist_pcg/ideal above: same engine scaffolding, collapsed
        // collectives.
        h.bench(&format!("dist_cg_merged/ideal/ranks{ranks}"), || {
            let report = distributed_resilient_cg_merged(
                black_box(&a),
                black_box(&b),
                ranks,
                dist_config(RecoveryPolicy::Ideal, false),
            );
            assert!(report.converged);
            assert_eq!(report.allreduces, report.residual_history.len() as u64 + 1);
            black_box(report)
        });
        h.bench(&format!("dist_pcg_merged/ideal/ranks{ranks}"), || {
            let report = distributed_resilient_pcg_merged(
                black_box(&a),
                black_box(&b),
                ranks,
                dist_config(RecoveryPolicy::Ideal, false),
            );
            assert!(report.converged);
            assert_eq!(report.allreduces, report.residual_history.len() as u64 + 1);
            black_box(report)
        });
        for (label, policy) in [
            ("feir", RecoveryPolicy::Feir),
            ("afeir", RecoveryPolicy::Afeir),
        ] {
            h.bench(
                &format!("dist_recovery_merged/{label}/ranks{ranks}"),
                || {
                    let report = distributed_resilient_cg_merged(
                        black_box(&a),
                        black_box(&b),
                        ranks,
                        dist_config(policy, true),
                    );
                    assert!(report.converged && report.pages_recovered + report.pages_ignored >= 3);
                    black_box(report)
                },
            );
        }
    }

    // PR 10: coupled cross-rank recovery — adjacent iterate pages lost on
    // *both* sides of a rank boundary in the same iteration, so neither
    // rank can interpolate alone and the plain request/reply round comes
    // back invalid. The wave collective gathers the union of lost rows and
    // one coupled solve reconstructs both pages exactly (pages_ignored is
    // asserted zero). The delta against dist_recovery/* above prices the
    // impasse detection + gather wave + coupled solve + revalidation round.
    {
        let a = poisson_2d(16); // 256 rows → 16-row pages at page_doubles=16
        let (_, b) = manufactured_rhs(&a, 5);
        for ranks in [2usize, 4] {
            let last_page_r0 = 256 / ranks / 16 - 1;
            for (label, policy) in [
                ("feir", RecoveryPolicy::Feir),
                ("afeir", RecoveryPolicy::Afeir),
            ] {
                h.bench(
                    &format!("dist_recovery/coupled_xrank/{label}/ranks{ranks}"),
                    || {
                        let config = DistResilienceConfig::for_policy(policy)
                            .with_page_doubles(16)
                            .with_tolerance(1e-8)
                            .with_max_iterations(20_000)
                            .with_scripted_faults(vec![
                                ScriptedFault {
                                    iteration: 3,
                                    rank: 0,
                                    vector: ProtectedVector::X,
                                    page: last_page_r0,
                                },
                                ScriptedFault {
                                    iteration: 3,
                                    rank: 1,
                                    vector: ProtectedVector::X,
                                    page: 0,
                                },
                            ]);
                        let report =
                            distributed_resilient_cg(black_box(&a), black_box(&b), ranks, config);
                        assert!(
                            report.converged
                                && report.pages_coupled == 2
                                && report.pages_ignored == 0
                        );
                        black_box(report)
                    },
                );
            }
        }
    }

    // PR 6: the same distributed CG over the *real* multi-process transport
    // — one OS process per rank, Unix-socket mesh, `feir-wire` frames. The
    // result is bitwise-identical to the in-process run (asserted in the
    // transport test suite); the delta against dist_cg/ideal above is the
    // true cost of process spawn + socket collectives, no time-slicing
    // caveat attached.
    {
        let worker = std::env::current_exe().expect("cannot locate own executable");
        let grid = if smoke { 8 } else { 16 };
        for ranks in [2usize, 4] {
            h.bench(&format!("dist_cg/processes/ranks{ranks}"), || {
                let spec = ProcessSpec::cg(grid, ranks);
                let result =
                    solve_with_processes(&worker, &spec).expect("multi-process solve failed");
                assert!(result.converged);
                black_box(result)
            });
        }
    }

    // PR 7: the same multi-process solve under a hostile network. `lossy`
    // runs over a chaos-injected mesh (drops, duplicates, reorders,
    // corruption) that the ack/retransmit sublayer absorbs — the solve is
    // bitwise-identical to the clean run (asserted in the transport suite),
    // so the delta against dist_cg/processes above is the pure cost of
    // sequencing, acknowledgments and retransmission stalls. `rejoin` kills
    // rank 1 mid-solve and respawns it into the elastic mesh: the price of
    // a whole-process loss healed by re-handshake + Krylov restart.
    {
        use std::sync::atomic::{AtomicU64, Ordering};
        static RUN: AtomicU64 = AtomicU64::new(0);
        let fresh_dir = || {
            std::env::temp_dir().join(format!(
                "feir-bench-net-{}-{}",
                std::process::id(),
                RUN.fetch_add(1, Ordering::Relaxed)
            ))
        };
        let worker = std::env::current_exe().expect("cannot locate own executable");
        let grid = if smoke { 8 } else { 16 };
        let ranks = 2;
        h.bench("dist_cg/processes/lossy/ranks2", || {
            let spec = ProcessSpec::cg(grid, ranks);
            let options = WorkerOptions {
                chaos: Some(
                    ChaosConfig::parse("seed=7,drop=0.01,dup=0.005,delay=0.005,corrupt=0.005")
                        .expect("chaos schedule parses"),
                ),
                retransmit_timeout: Some(Duration::from_millis(10)),
                ..WorkerOptions::default()
            };
            let result = spawn_workers_with(
                &worker,
                &spec,
                &Transport::Uds { dir: fresh_dir() },
                &options,
            )
            .expect("lossy spawn failed")
            .join()
            .expect("lossy solve failed");
            assert!(result.converged);
            black_box(result)
        });
        h.bench("dist_cg/processes/rejoin/ranks2", || {
            let spec = ProcessSpec::cg(grid, ranks);
            let options = WorkerOptions {
                policy: Some(RecoveryPolicy::Feir),
                elastic: true,
                // Dilate the iterations so the kill lands mid-solve; the
                // sleep does no floating-point work.
                spin: Some(Duration::from_millis(8)),
                ..WorkerOptions::default()
            };
            let mut handles = spawn_workers_with(
                &worker,
                &spec,
                &Transport::Uds { dir: fresh_dir() },
                &options,
            )
            .expect("elastic spawn failed");
            std::thread::sleep(Duration::from_millis(60));
            handles.kill_rank(1).expect("kill failed");
            std::thread::sleep(Duration::from_millis(30));
            handles.respawn_rank(1).expect("respawn failed");
            let result = handles.join().expect("rejoined solve failed");
            assert!(result.converged);
            black_box(result)
        });
    }

    // PR 4: the split-phase allreduce in isolation. Every rank performs the
    // same local filler work per round; the blocking variant pays
    // work-then-wait serially, the split variant posts its partial first and
    // runs the work inside the collective — the gap is the overlap the
    // AFEIR recovery path gets for free.
    {
        let ranks = 4;
        let rounds = if smoke { 8 } else { 64 };
        let filler = |rank: usize| {
            let mut acc = 0.0;
            for i in 0..400 * (rank + 1) {
                acc += (i as f64).sqrt();
            }
            acc
        };
        for (label, split) in [("blocking", false), ("split", true)] {
            h.bench(
                &format!("split_phase_allreduce/{label}/ranks{ranks}"),
                || {
                    let comms = RankComm::for_ranks(&HaloPlan::empty(ranks), ranks);
                    let totals: Vec<f64> = std::thread::scope(|scope| {
                        let handles: Vec<_> = comms
                            .into_iter()
                            .map(|comm| {
                                scope.spawn(move || {
                                    let rank = comm.rank();
                                    let mut total = 0.0;
                                    for round in 0..rounds {
                                        let local = rank as f64 + round as f64 * 0.01;
                                        total += if split {
                                            let pending = comm.start_allreduce(local).unwrap();
                                            black_box(filler(rank));
                                            pending.finish().unwrap()
                                        } else {
                                            black_box(filler(rank));
                                            comm.allreduce_sum(local).unwrap()
                                        };
                                    }
                                    total
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).collect()
                    });
                    black_box(totals)
                },
            );
        }
    }

    // PR 5: the collective schedule itself — a classic CG iteration's two
    // scalar allreduces versus the merged iteration's single two-component
    // vector allreduce. The gap is pure synchronization cost: same partials,
    // same rank-ordered arithmetic, half the gather/broadcast round trips.
    {
        let ranks = 4;
        let rounds = if smoke { 8 } else { 64 };
        for (label, merged) in [("classic_2_scalar", false), ("merged_1_vec2", true)] {
            h.bench(
                &format!("allreduce_per_iteration/{label}/ranks{ranks}"),
                || {
                    let comms = RankComm::for_ranks(&HaloPlan::empty(ranks), ranks);
                    let totals: Vec<f64> = std::thread::scope(|scope| {
                        let handles: Vec<_> = comms
                            .into_iter()
                            .map(|comm| {
                                scope.spawn(move || {
                                    let rank = comm.rank();
                                    let mut total = 0.0;
                                    for round in 0..rounds {
                                        let u = rank as f64 + round as f64 * 0.01;
                                        let v = rank as f64 * 0.5 - round as f64 * 0.02;
                                        total += if merged {
                                            let sums = comm.allreduce_vec(vec![u, v]).unwrap();
                                            sums[0] + sums[1]
                                        } else {
                                            comm.allreduce_sum(u).unwrap()
                                                + comm.allreduce_sum(v).unwrap()
                                        };
                                    }
                                    total
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).collect()
                    });
                    black_box(totals)
                },
            );
        }
    }

    // Emit the snapshot JSON (no external JSON crate in this environment).
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"feir-bench-snapshot/v1\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!(
        "  \"threads\": {},\n",
        rayon::current_num_threads()
    ));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    ));
    out.push_str(&format!(
        "  \"feir_num_threads_env\": {},\n",
        match std::env::var("FEIR_NUM_THREADS") {
            Ok(v) => format!("\"{v}\""),
            Err(_) => "null".to_string(),
        }
    ));
    out.push_str("  \"benches\": [\n");
    let rows: Vec<String> = h
        .results
        .iter()
        .map(|row| {
            format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
                row.name, row.mean_ns, row.iters, row.p50_ns, row.p99_ns
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    print!("{out}");

    // Regression gate: diff against a committed baseline snapshot.
    if let Some(path) = compare_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("--compare {path}: {e}"));
        let baseline = match parse_snapshot(&text) {
            Ok(rows) => rows,
            Err(message) => {
                eprintln!("FAIL: --compare {path}: {message}");
                return ExitCode::FAILURE;
            }
        };
        match compare_against(&h.results, &baseline, threshold_pct) {
            Err(_) => {
                eprintln!(
                    "FAIL: no shared scenarios between this run and {path} — wrong \
                     baseline file, renamed scenarios, or a drifted snapshot format \
                     (the gate refuses to pass vacuously)"
                );
                return ExitCode::FAILURE;
            }
            Ok(regressions) if !regressions.is_empty() => {
                eprintln!("FAIL: scenarios regressed over {threshold_pct}%: {regressions:?}");
                return ExitCode::FAILURE;
            }
            Ok(_) => {}
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::parse_snapshot;

    #[test]
    fn plain_and_negative_floats_parse() {
        let rows = parse_snapshot(
            "{\"name\": \"a\", \"mean_ns\": 123.5, \"iters\": 4}\n\
             {\"name\": \"b\", \"mean_ns\": -1.25, \"iters\": 4}\n",
        )
        .unwrap();
        assert_eq!(
            rows,
            vec![("a".to_string(), 123.5), ("b".to_string(), -1.25)]
        );
    }

    #[test]
    fn scientific_notation_with_plus_sign_parses_fully() {
        // Regression: the old scanner stopped at '+', truncating "1.2e+05"
        // to "1.2e" (unparsable) and silently dropping the row.
        let rows =
            parse_snapshot("{\"name\": \"spmv\", \"mean_ns\": 1.2e+05, \"iters\": 9}").unwrap();
        assert_eq!(rows, vec![("spmv".to_string(), 1.2e5)]);
    }

    #[test]
    fn uppercase_exponent_marker_parses_fully() {
        // Regression: the old scanner only knew lowercase 'e', so "3E5"
        // truncated to "3" — a silently wrong baseline, worse than a skip.
        let rows = parse_snapshot("{\"name\": \"dot\", \"mean_ns\": 3E5, \"iters\": 2}").unwrap();
        assert_eq!(rows, vec![("dot".to_string(), 3e5)]);
    }

    #[test]
    fn negative_exponent_parses() {
        let rows =
            parse_snapshot("{\"name\": \"tiny\", \"mean_ns\": 4.5e-3, \"iters\": 1}").unwrap();
        assert_eq!(rows, vec![("tiny".to_string(), 4.5e-3)]);
    }

    #[test]
    fn unparsable_mean_on_a_named_row_is_a_hard_error() {
        let err = parse_snapshot("{\"name\": \"broken\", \"mean_ns\": oops}").unwrap_err();
        assert!(err.contains("broken"), "error names the scenario: {err}");
    }

    #[test]
    fn missing_mean_field_on_a_named_row_is_a_hard_error() {
        let err = parse_snapshot("{\"name\": \"lonely\", \"iters\": 3}").unwrap_err();
        assert!(err.contains("lonely"), "error names the scenario: {err}");
    }

    #[test]
    fn lines_without_a_name_are_still_skipped() {
        let rows = parse_snapshot("{\n  \"schema\": \"feir-bench-snapshot/v1\",\n}").unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn rows_with_percentile_fields_still_compare_on_mean() {
        // New snapshots append p50_ns/p99_ns after iters; the scanner keys
        // on mean_ns, so old and new formats stay mutually comparable.
        let rows = parse_snapshot(
            "{\"name\": \"x\", \"mean_ns\": 10.5, \"iters\": 3, \"p50_ns\": 7, \"p99_ns\": 63}",
        )
        .unwrap();
        assert_eq!(rows, vec![("x".to_string(), 10.5)]);
    }
}
