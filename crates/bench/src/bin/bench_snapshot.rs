//! Reproducible benchmark snapshot: times the solver kernels (serial and
//! parallel), the `rayon::join` overlap primitive and a CG solve, then emits
//! one JSON object on stdout. The committed `BENCH_PR2.json` embeds a run of
//! this tool; regenerate with
//!
//! ```text
//! cargo run --release -p feir-bench --bin bench_snapshot > snapshot.json
//! ```
//!
//! Pass `--smoke` for a seconds-scale run on tiny sizes (used by CI to keep
//! the tool from bit-rotting). `FEIR_NUM_THREADS` sizes the pool as usual.

use std::hint::black_box;
use std::time::{Duration, Instant};

use feir_dist::{
    distributed_resilient_cg, distributed_resilient_pcg, DistResilienceConfig, HaloPlan,
    ProtectedVector, RankComm, ScriptedFault,
};
use feir_recovery::RecoveryPolicy;
use feir_solvers::{cg, SolveOptions};
use feir_sparse::generators::{manufactured_rhs, poisson_2d};
use feir_sparse::vecops;

/// Target measurement time per benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(250);
const SMOKE_MEASURE: Duration = Duration::from_millis(25);

struct Harness {
    budget: Duration,
    results: Vec<(String, f64, u64)>,
}

impl Harness {
    /// Times `routine`, recording the mean per-iteration nanoseconds.
    fn bench<R>(&mut self, name: &str, mut routine: impl FnMut() -> R) {
        // Calibrate with a single run, then spend the budget.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        eprintln!("{name:<40} {:>12.0} ns/iter  ({iters} iters)", mean_ns);
        self.results.push((name.to_string(), mean_ns, iters));
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut h = Harness {
        budget: if smoke { SMOKE_MEASURE } else { TARGET_MEASURE },
        results: Vec::new(),
    };

    // Warm the pool up front so lazy worker spawning doesn't skew the first
    // benchmark's calibration pass.
    let warm: Vec<f64> = (0..vecops::DOT_CHUNK * 2).map(|i| i as f64).collect();
    black_box(vecops::dot_parallel(&warm, &warm));

    let spmv_sizes: &[usize] = if smoke { &[16] } else { &[32, 64, 96] };
    for &side in spmv_sizes {
        let a = poisson_2d(side);
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; a.rows()];
        h.bench(&format!("spmv/serial/{}", a.rows()), || {
            a.spmv(black_box(&x), black_box(&mut y))
        });
        h.bench(&format!("spmv/parallel/{}", a.rows()), || {
            a.spmv_parallel(black_box(&x), black_box(&mut y))
        });
    }

    let n = if smoke { 1 << 12 } else { 1 << 17 };
    let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.001).collect();
    let z: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let mut y = z.clone();
    h.bench(&format!("dot/serial/{n}"), || {
        black_box(vecops::dot(black_box(&x), black_box(&z)))
    });
    h.bench(&format!("dot/parallel/{n}"), || {
        black_box(vecops::dot_parallel(black_box(&x), black_box(&z)))
    });
    h.bench(&format!("axpy/serial/{n}"), || {
        vecops::axpy(black_box(1.0001), black_box(&x), black_box(&mut y))
    });
    h.bench(&format!("axpy/parallel/{n}"), || {
        vecops::axpy_parallel(black_box(1.0001), black_box(&x), black_box(&mut y))
    });

    // The AFEIR overlap primitive: a join of two tiny closures measures the
    // fork/sync overhead that used to be a full OS-thread spawn per call.
    h.bench("join/overhead", || {
        let (a, b) = rayon::join(|| black_box(1u64) + 1, || black_box(2u64) + 2);
        black_box(a + b)
    });

    let side = if smoke { 16 } else { 48 };
    let a = poisson_2d(side);
    let (_, b) = manufactured_rhs(&a, 3);
    let options = SolveOptions::default()
        .with_tolerance(1e-8)
        .with_parallel(false);
    h.bench(&format!("cg/serial/poisson_{side}x{side}"), || {
        black_box(cg(black_box(&a), black_box(&b), None, black_box(&options)))
    });
    let options_par = SolveOptions::default()
        .with_tolerance(1e-8)
        .with_parallel(true);
    h.bench(&format!("cg/parallel/poisson_{side}x{side}"), || {
        black_box(cg(
            black_box(&a),
            black_box(&b),
            None,
            black_box(&options_par),
        ))
    });

    // Distributed recovery scenarios (PR 3): the fault-free ideal distributed
    // CG against FEIR and AFEIR absorbing a deterministic burst of DUEs
    // (iterate, direction and residual pages across the ranks, including a
    // boundary page whose recovery fetches values from the neighbour rank).
    // The FEIR-vs-AFEIR gap is the recovery overhead the paper's asynchrony
    // removes from the critical path.
    let side = if smoke { 12 } else { 24 };
    let a = poisson_2d(side);
    let (_, b) = manufactured_rhs(&a, 5);
    for ranks in [2usize, 4] {
        let dist_config = |policy: RecoveryPolicy, faulted: bool| {
            let faults = if faulted {
                vec![
                    ScriptedFault {
                        iteration: 3,
                        rank: ranks - 1,
                        vector: ProtectedVector::X,
                        page: 0,
                    },
                    ScriptedFault {
                        iteration: 5,
                        rank: 0,
                        vector: ProtectedVector::D,
                        page: 1,
                    },
                    ScriptedFault {
                        iteration: 8,
                        rank: ranks / 2,
                        vector: ProtectedVector::G,
                        page: 0,
                    },
                ]
            } else {
                Vec::new()
            };
            DistResilienceConfig::for_policy(policy)
                .with_page_doubles(32)
                .with_tolerance(1e-8)
                .with_max_iterations(20_000)
                .with_scripted_faults(faults)
        };
        h.bench(&format!("dist_cg/ideal/ranks{ranks}"), || {
            black_box(distributed_resilient_cg(
                black_box(&a),
                black_box(&b),
                ranks,
                dist_config(RecoveryPolicy::Ideal, false),
            ))
        });
        for (label, policy) in [
            ("feir", RecoveryPolicy::Feir),
            ("afeir", RecoveryPolicy::Afeir),
        ] {
            h.bench(&format!("dist_recovery/{label}/ranks{ranks}"), || {
                let report = distributed_resilient_cg(
                    black_box(&a),
                    black_box(&b),
                    ranks,
                    dist_config(policy, true),
                );
                assert!(report.converged && report.pages_recovered >= 3);
                black_box(report)
            });
        }
        // PR 4: the PCG instantiation of the same engine — ideal baseline
        // plus FEIR/AFEIR absorbing the same deterministic DUE burst (the
        // preconditioner halves the iteration count, so the per-solve cost
        // of recovery shifts toward the reconstruction itself).
        h.bench(&format!("dist_pcg/ideal/ranks{ranks}"), || {
            black_box(distributed_resilient_pcg(
                black_box(&a),
                black_box(&b),
                ranks,
                dist_config(RecoveryPolicy::Ideal, false),
            ))
        });
        for (label, policy) in [
            ("feir", RecoveryPolicy::Feir),
            ("afeir", RecoveryPolicy::Afeir),
        ] {
            h.bench(&format!("dist_recovery_pcg/{label}/ranks{ranks}"), || {
                let report = distributed_resilient_pcg(
                    black_box(&a),
                    black_box(&b),
                    ranks,
                    dist_config(policy, true),
                );
                assert!(report.converged && report.pages_recovered >= 3);
                black_box(report)
            });
        }
    }

    // PR 4: the split-phase allreduce in isolation. Every rank performs the
    // same local filler work per round; the blocking variant pays
    // work-then-wait serially, the split variant posts its partial first and
    // runs the work inside the collective — the gap is the overlap the
    // AFEIR recovery path gets for free.
    {
        let ranks = 4;
        let rounds = if smoke { 8 } else { 64 };
        let filler = |rank: usize| {
            let mut acc = 0.0;
            for i in 0..400 * (rank + 1) {
                acc += (i as f64).sqrt();
            }
            acc
        };
        for (label, split) in [("blocking", false), ("split", true)] {
            h.bench(
                &format!("split_phase_allreduce/{label}/ranks{ranks}"),
                || {
                    let comms = RankComm::for_ranks(&HaloPlan::empty(ranks), ranks);
                    let totals: Vec<f64> = std::thread::scope(|scope| {
                        let handles: Vec<_> = comms
                            .into_iter()
                            .map(|comm| {
                                scope.spawn(move || {
                                    let rank = comm.rank();
                                    let mut total = 0.0;
                                    for round in 0..rounds {
                                        let local = rank as f64 + round as f64 * 0.01;
                                        total += if split {
                                            let pending = comm.start_allreduce(local);
                                            black_box(filler(rank));
                                            pending.finish()
                                        } else {
                                            black_box(filler(rank));
                                            comm.allreduce_sum(local)
                                        };
                                    }
                                    total
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).collect()
                    });
                    black_box(totals)
                },
            );
        }
    }

    // Emit the snapshot JSON (no external JSON crate in this environment).
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"feir-bench-snapshot/v1\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!(
        "  \"threads\": {},\n",
        rayon::current_num_threads()
    ));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    ));
    out.push_str(&format!(
        "  \"feir_num_threads_env\": {},\n",
        match std::env::var("FEIR_NUM_THREADS") {
            Ok(v) => format!("\"{v}\""),
            Err(_) => "null".to_string(),
        }
    ));
    out.push_str("  \"benches\": [\n");
    let rows: Vec<String> = h
        .results
        .iter()
        .map(|(name, mean_ns, iters)| {
            format!("    {{\"name\": \"{name}\", \"mean_ns\": {mean_ns:.1}, \"iters\": {iters}}}")
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    print!("{out}");
}
