//! Table 2: overhead of each resilience method in the absence of faults.
//!
//! Paper values (harmonic mean over the nine matrices, 8 cores):
//! Lossy 0.00%, Trivial 0.00%, AFEIR 0.23%, FEIR 2.73%, ckpt@1000 17.62%,
//! ckpt@200 46.20%.

use feir_bench::{aggregate_slowdowns, slowdown_percent, HarnessConfig};
use feir_core::{measure_ideal, run_overhead, PaperMatrix, RecoveryPolicy};

fn main() {
    let cfg = HarnessConfig::from_env();
    let methods = [
        (RecoveryPolicy::LossyRestart, "Lossy"),
        (RecoveryPolicy::Trivial, "Trivial"),
        (RecoveryPolicy::Afeir, "AFEIR"),
        (RecoveryPolicy::Feir, "FEIR"),
        (RecoveryPolicy::Checkpoint { interval: 1000 }, "ckpt 1K"),
        (RecoveryPolicy::Checkpoint { interval: 200 }, "ckpt 200"),
    ];
    let matrices = PaperMatrix::ALL;

    println!("# Table 2: resilience methods' overheads, no errors");
    println!(
        "# scale={} reps={} tol={:e}",
        cfg.scale, cfg.repetitions, cfg.options.tolerance
    );
    println!(
        "{:<12} {:>10}  (harmonic mean over {} matrices)",
        "method",
        "overhead",
        matrices.len()
    );

    let mut rows = Vec::new();
    for (policy, name) in methods {
        let mut slowdowns = Vec::new();
        for matrix in matrices {
            let (a, b) = cfg.build_system(matrix);
            let resilience = cfg.resilience(policy, false);
            // Per-matrix best-of-reps to damp scheduling noise, as overheads
            // in the paper are means of many repetitions.
            let mut ideal_best = f64::INFINITY;
            let mut method_best = f64::INFINITY;
            for _ in 0..cfg.repetitions {
                let ideal = measure_ideal(&a, &b, &resilience, &cfg.options);
                let run = run_overhead(&a, &b, &resilience, &cfg.options);
                assert!(
                    ideal.converged() && run.converged(),
                    "{name} on {} failed",
                    matrix.name()
                );
                ideal_best = ideal_best.min(ideal.elapsed.as_secs_f64());
                method_best = method_best.min(run.elapsed.as_secs_f64());
            }
            slowdowns.push(
                slowdown_percent(
                    std::time::Duration::from_secs_f64(method_best),
                    std::time::Duration::from_secs_f64(ideal_best),
                )
                .max(0.0),
            );
        }
        let mean = aggregate_slowdowns(&slowdowns);
        println!("{:<12} {:>9.2}%", name, mean);
        rows.push((name, mean));
    }

    println!("\n# paper reference: Lossy 0.00 / Trivial 0.00 / AFEIR 0.23 / FEIR 2.73 / ckpt1K 17.62 / ckpt200 46.20 (%)");
}
