//! # feir-bench
//!
//! Benchmark and experiment harnesses that regenerate every table and figure
//! of the paper's evaluation section:
//!
//! | Paper artefact | Binary / bench | What it prints |
//! |---|---|---|
//! | Table 2 | `cargo run -p feir-bench --release --bin table2` | overhead of each method with no errors |
//! | Table 3 | `cargo run -p feir-bench --release --bin table3` | increase of time per state for FEIR / AFEIR |
//! | Figure 3 | `cargo run -p feir-bench --release --bin figure3` | convergence trace with a single error in `x` |
//! | Figure 4 | `cargo run -p feir-bench --release --bin figure4` | slowdown per matrix × method × error rate |
//! | Figure 5 | `cargo run -p feir-bench --release --bin figure5` | strong-scaling speedups, 1 and 2 errors per run |
//! | kernels / ablations | `cargo bench -p feir-bench` | Criterion micro-benchmarks |
//!
//! Problem sizes are scaled to laptop budgets by default; set the
//! `FEIR_SCALE` (matrix size multiplier), `FEIR_REPS` (repetitions) and
//! `FEIR_RATES` (comma-separated normalised error rates) environment
//! variables to enlarge a run towards the paper's full sweep.

use std::time::Duration;

use feir_core::{ExperimentConfig, PaperMatrix, RecoveryPolicy, SolveOptions};
use feir_recovery::report::harmonic_mean_slowdown_percent;
use feir_recovery::ResilienceConfig;
use feir_sparse::generators::manufactured_rhs;
use feir_sparse::CsrMatrix;

/// Harness-wide settings read from the environment.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Matrix scale factor (1.0 = laptop default).
    pub scale: f64,
    /// Repetitions per experiment cell.
    pub repetitions: usize,
    /// Normalised error frequencies for the Figure-4 sweep.
    pub error_rates: Vec<f64>,
    /// Page size in doubles used by the experiments (small pages keep the
    /// laptop-scale matrices spanning many pages, preserving the error model).
    pub page_doubles: usize,
    /// Solver options.
    pub options: SolveOptions,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

impl HarnessConfig {
    /// Reads the configuration from `FEIR_SCALE`, `FEIR_REPS`, `FEIR_RATES`
    /// and `FEIR_TOL`.
    pub fn from_env() -> Self {
        let scale = std::env::var("FEIR_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.35);
        let repetitions = std::env::var("FEIR_REPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3);
        let error_rates = std::env::var("FEIR_RATES")
            .ok()
            .map(|v| {
                v.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .collect::<Vec<f64>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| vec![1.0, 2.0, 5.0, 10.0, 20.0, 50.0]);
        let tolerance = std::env::var("FEIR_TOL")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1e-8);
        Self {
            scale,
            repetitions,
            error_rates,
            page_doubles: 256,
            options: SolveOptions::default()
                .with_tolerance(tolerance)
                .with_max_iterations(50_000),
        }
    }

    /// Builds the proxy matrix and right-hand side for one of the paper's
    /// evaluation matrices at the harness scale.
    pub fn build_system(&self, matrix: PaperMatrix) -> (CsrMatrix, Vec<f64>) {
        let a = matrix.build(self.scale);
        let (_, b) = manufactured_rhs(&a, 0xB0B + matrix.name().len() as u64);
        (a, b)
    }

    /// Resilience configuration for a policy under this harness.
    pub fn resilience(&self, policy: RecoveryPolicy, preconditioned: bool) -> ResilienceConfig {
        ResilienceConfig {
            policy,
            page_doubles: self.page_doubles,
            preconditioned,
            checkpoint_on_disk: true,
            threads: None,
        }
    }

    /// Experiment configuration for a (policy, rate, seed) cell.
    pub fn experiment(
        &self,
        policy: RecoveryPolicy,
        preconditioned: bool,
        rate: f64,
        seed: u64,
    ) -> ExperimentConfig {
        ExperimentConfig {
            resilience: self.resilience(policy, preconditioned),
            normalized_error_rate: rate,
            seed,
            options: self.options.clone(),
        }
    }
}

/// The five methods compared in the paper's evaluation plus their print names.
pub fn compared_policies(checkpoint_interval: usize) -> Vec<(RecoveryPolicy, &'static str)> {
    vec![
        (RecoveryPolicy::Afeir, "AFEIR"),
        (RecoveryPolicy::Feir, "FEIR"),
        (RecoveryPolicy::LossyRestart, "Lossy"),
        (
            RecoveryPolicy::Checkpoint {
                interval: checkpoint_interval,
            },
            "ckpt",
        ),
        (RecoveryPolicy::Trivial, "trivial"),
    ]
}

/// Slowdown in percent of `measured` with respect to `reference`.
pub fn slowdown_percent(measured: Duration, reference: Duration) -> f64 {
    if reference.as_secs_f64() <= 0.0 {
        return 0.0;
    }
    (measured.as_secs_f64() / reference.as_secs_f64() - 1.0) * 100.0
}

/// Harmonic-mean aggregation of slowdown percentages, as the paper uses.
pub fn aggregate_slowdowns(percents: &[f64]) -> f64 {
    harmonic_mean_slowdown_percent(percents)
}

/// Formats a duration in seconds with millisecond resolution.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_are_sane() {
        let cfg = HarnessConfig::from_env();
        assert!(cfg.scale > 0.0);
        assert!(cfg.repetitions >= 1);
        assert_eq!(cfg.error_rates.len(), 6);
        assert!(cfg.page_doubles >= 64);
    }

    #[test]
    fn build_system_produces_consistent_shapes() {
        let cfg = HarnessConfig {
            scale: 0.2,
            ..HarnessConfig::from_env()
        };
        let (a, b) = cfg.build_system(PaperMatrix::Qa8fm);
        assert_eq!(a.rows(), b.len());
        assert!(a.is_symmetric(1e-10));
    }

    #[test]
    fn compared_policy_set_matches_paper() {
        let policies = compared_policies(1000);
        assert_eq!(policies.len(), 5);
        assert_eq!(policies[0].1, "AFEIR");
        assert_eq!(policies[4].1, "trivial");
    }

    #[test]
    fn slowdown_math() {
        assert!(
            (slowdown_percent(Duration::from_secs(3), Duration::from_secs(2)) - 50.0).abs() < 1e-9
        );
        assert_eq!(
            slowdown_percent(Duration::from_secs(1), Duration::ZERO),
            0.0
        );
        let agg = aggregate_slowdowns(&[10.0, 10.0]);
        assert!((agg - 10.0).abs() < 1e-9);
    }
}
