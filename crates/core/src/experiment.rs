//! Experiment driver: sets up the solver, the fault injector and the error
//! rates exactly the way the paper's evaluation does (Section 5).

use std::time::Duration;

use feir_pagemem::{FaultInjector, InjectionPlan};
use feir_recovery::{RecoveryPolicy, ResilienceConfig, ResilientCg, RunReport};
use feir_solvers::SolveOptions;
use feir_sparse::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Configuration of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Resilience configuration (policy, page size, preconditioning).
    pub resilience: ResilienceConfig,
    /// Normalised error frequency `n`: `n` expected errors per ideal solve
    /// time (the x-axis annotation of Figure 4). Zero disables injection.
    pub normalized_error_rate: f64,
    /// RNG seed for the injection stream.
    pub seed: u64,
    /// Solver options (tolerance 1e-10 in the paper).
    pub options: SolveOptions,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            resilience: ResilienceConfig::default(),
            normalized_error_rate: 0.0,
            seed: 0,
            options: SolveOptions::default(),
        }
    }
}

/// Result record for one (matrix, policy, error-rate) cell of Figure 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlowdownRecord {
    /// Matrix name.
    pub matrix: String,
    /// Policy name.
    pub policy: String,
    /// Normalised error frequency.
    pub normalized_error_rate: f64,
    /// Measured slowdown vs the ideal CG, in percent.
    pub slowdown_percent: f64,
    /// Faults discovered during the run.
    pub faults_discovered: usize,
    /// Whether the run converged.
    pub converged: bool,
    /// Iterations executed.
    pub iterations: usize,
}

/// Runs the ideal (non-resilient) CG/PCG and returns its report; its elapsed
/// time is the `τ` every error rate is normalised to.
pub fn measure_ideal(
    a: &CsrMatrix,
    b: &[f64],
    resilience: &ResilienceConfig,
    options: &SolveOptions,
) -> RunReport {
    let config = ResilienceConfig {
        policy: RecoveryPolicy::Ideal,
        ..resilience.clone()
    };
    ResilientCg::new(a, b, config).solve(options)
}

/// Runs a resilient solve with no error injection (Table 2 overheads).
pub fn run_overhead(
    a: &CsrMatrix,
    b: &[f64],
    resilience: &ResilienceConfig,
    options: &SolveOptions,
) -> RunReport {
    ResilientCg::new(a, b, resilience.clone()).solve(options)
}

/// Runs a resilient solve under an exponential error stream whose MTBE is the
/// ideal solve time divided by `normalized_rate` (Section 5.3).
pub fn run_with_errors(
    a: &CsrMatrix,
    b: &[f64],
    config: &ExperimentConfig,
    ideal_time: Duration,
) -> RunReport {
    let solver = ResilientCg::new(a, b, config.resilience.clone());
    let registry = solver.registry();
    let plan = InjectionPlan::normalized(config.normalized_error_rate, ideal_time, config.seed);
    let injector = FaultInjector::start(registry, plan);
    let report = solver.solve(&config.options);
    injector.stop();
    report
}

/// Runs a resilient solve with exactly one error injected at
/// `fraction_of_ideal · ideal_time` into the given flat page index
/// (`usize::MAX` = random page), reproducing the single-error convergence
/// trace of Figure 3.
pub fn run_with_single_error(
    a: &CsrMatrix,
    b: &[f64],
    resilience: &ResilienceConfig,
    options: &SolveOptions,
    ideal_time: Duration,
    fraction_of_ideal: f64,
    flat_page: usize,
) -> RunReport {
    let solver = ResilientCg::new(a, b, resilience.clone());
    let registry = solver.registry();
    let at = ideal_time.mul_f64(fraction_of_ideal.max(0.0));
    let injector = FaultInjector::start(registry, InjectionPlan::Scheduled(vec![(at, flat_page)]));
    let report = solver.solve(options);
    injector.stop();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_sparse::generators::{manufactured_rhs, poisson_2d};

    fn config(policy: RecoveryPolicy, rate: f64) -> ExperimentConfig {
        ExperimentConfig {
            resilience: ResilienceConfig {
                policy,
                page_doubles: 64,
                ..ResilienceConfig::default()
            },
            normalized_error_rate: rate,
            seed: 7,
            options: SolveOptions::default(),
        }
    }

    #[test]
    fn ideal_measurement_converges() {
        let a = poisson_2d(14);
        let (_, b) = manufactured_rhs(&a, 1);
        let cfg = config(RecoveryPolicy::Feir, 0.0);
        let ideal = measure_ideal(&a, &b, &cfg.resilience, &cfg.options);
        assert!(ideal.converged());
        assert_eq!(ideal.faults_discovered, 0);
    }

    #[test]
    fn overhead_run_without_errors_matches_ideal_convergence() {
        let a = poisson_2d(14);
        let (_, b) = manufactured_rhs(&a, 2);
        let cfg = config(RecoveryPolicy::Afeir, 0.0);
        let ideal = measure_ideal(&a, &b, &cfg.resilience, &cfg.options);
        let afeir = run_overhead(&a, &b, &cfg.resilience, &cfg.options);
        assert!(afeir.converged());
        assert!((afeir.iterations as i64 - ideal.iterations as i64).abs() <= 1);
    }

    #[test]
    fn error_injection_run_still_converges_with_feir() {
        let a = poisson_2d(16);
        let (_, b) = manufactured_rhs(&a, 3);
        let cfg = config(RecoveryPolicy::Feir, 5.0);
        let ideal = measure_ideal(&a, &b, &cfg.resilience, &cfg.options);
        // The normalized plan injects on a wall-clock schedule, so on a
        // loaded machine a single slow solve can absorb far more than
        // `rate` faults and cascade past the iteration budget. Allow a
        // couple of attempts before declaring FEIR unable to converge.
        let budget = ideal.elapsed.max(Duration::from_millis(5));
        let converged = (0..3).any(|_| run_with_errors(&a, &b, &cfg, budget).converged());
        assert!(converged);
    }

    #[test]
    fn single_error_run_reports_the_fault() {
        let a = poisson_2d(16);
        let (_, b) = manufactured_rhs(&a, 4);
        let cfg = config(RecoveryPolicy::Feir, 0.0);
        let ideal = measure_ideal(&a, &b, &cfg.resilience, &cfg.options);
        // Inject into page 0 of x (flat index 0) at 30% of the ideal time.
        let report = run_with_single_error(
            &a,
            &b,
            &cfg.resilience,
            &cfg.options,
            ideal.elapsed.max(Duration::from_millis(10)),
            0.3,
            0,
        );
        assert!(report.converged());
    }

    #[test]
    fn slowdown_record_serialises() {
        let record = SlowdownRecord {
            matrix: "thermal2".into(),
            policy: "FEIR".into(),
            normalized_error_rate: 5.0,
            slowdown_percent: 4.2,
            faults_discovered: 3,
            converged: true,
            iterations: 1234,
        };
        // serde_json is intentionally not a dependency; check Debug formatting
        // and that the record round-trips through clone.
        assert!(format!("{record:?}").contains("thermal2"));
        let clone = record.clone();
        assert_eq!(clone.matrix, "thermal2");
        assert!(clone.converged);
    }
}
