//! # feir-core
//!
//! Public facade and experiment driver for the FEIR reproduction of
//! *"Exploiting Asynchrony from Exact Forward Recovery for DUE in Iterative
//! Solvers"* (Jaulmes et al., SC 2015).
//!
//! The crate ties the substrates together into the workflows the paper's
//! evaluation section uses:
//!
//! * [`experiment::measure_ideal`] — the fault-free reference run every
//!   overhead and slowdown is normalised against;
//! * [`experiment::run_overhead`] — a resilient run with *no* injected errors
//!   (Table 2);
//! * [`experiment::run_with_errors`] — a resilient run under an exponential
//!   error stream with the paper's normalised error frequency (Figure 4);
//! * [`experiment::run_with_single_error`] — one scheduled error at a fixed
//!   fraction of the ideal solve time (Figure 3 trace);
//! * [`ExperimentConfig`] / result records (serde-serialisable) used by the
//!   `feir-bench` harnesses to print each table and figure.

#![warn(missing_docs)]

pub mod experiment;

pub use experiment::{
    measure_ideal, run_overhead, run_with_errors, run_with_single_error, ExperimentConfig,
    SlowdownRecord,
};

pub use feir_recovery::{RecoveryPolicy, ResilienceConfig, RunReport};
pub use feir_solvers::SolveOptions;
pub use feir_sparse::proxies::PaperMatrix;
