//! Resilience policy selection and configuration.

use serde::{Deserialize, Serialize};

/// The resilience technique applied to the solver — the five methods compared
/// throughout the paper's evaluation plus the non-resilient ideal baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// No resilience mechanism and no fault checks at all; the reference
    /// "ideal CG" every overhead is measured against.
    Ideal,
    /// Trivial forward recovery: lost pages are replaced by blank pages and
    /// execution simply continues (Section 4.1). Convergence guarantees are
    /// lost.
    Trivial,
    /// Trivial blank-accept followed by a residual-replacement rebuild of
    /// the recurrence state (the merged solvers' restart machinery): the
    /// blanked vectors are made mutually consistent again, so the iteration
    /// keeps converging at the price of a restart. A fair comparison point
    /// for `Trivial`, which honestly diverges on the merged loops.
    TrivialReplace,
    /// Periodic checkpoint of `x` and `d` with rollback on error
    /// (Section 4.2). The interval is in solver iterations.
    Checkpoint {
        /// Checkpoint period in iterations.
        interval: usize,
    },
    /// The Lossy Restart (Section 4.3): block-Jacobi interpolation of lost
    /// iterate pages followed by a restart.
    LossyRestart,
    /// Forward Exact Interpolation Recovery with recovery tasks in the
    /// critical path (Figure 2(a)).
    Feir,
    /// Asynchronous FEIR: recovery tasks overlapped with the reductions at
    /// lower priority (Figure 2(b)).
    Afeir,
}

impl RecoveryPolicy {
    /// All policies compared in Figure 4, in the paper's plotting order.
    pub const COMPARED: [RecoveryPolicy; 5] = [
        RecoveryPolicy::Afeir,
        RecoveryPolicy::Feir,
        RecoveryPolicy::LossyRestart,
        RecoveryPolicy::Checkpoint { interval: 1000 },
        RecoveryPolicy::Trivial,
    ];

    /// Short name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::Ideal => "ideal",
            RecoveryPolicy::Trivial => "trivial",
            RecoveryPolicy::TrivialReplace => "triv+rr",
            RecoveryPolicy::Checkpoint { .. } => "ckpt",
            RecoveryPolicy::LossyRestart => "lossy",
            RecoveryPolicy::Feir => "FEIR",
            RecoveryPolicy::Afeir => "AFEIR",
        }
    }

    /// True for the two methods contributed by the paper.
    pub fn is_forward_exact(&self) -> bool {
        matches!(self, RecoveryPolicy::Feir | RecoveryPolicy::Afeir)
    }

    /// True if the policy needs page-fault tracking machinery (everything but
    /// the ideal baseline).
    pub fn needs_protection(&self) -> bool {
        !matches!(self, RecoveryPolicy::Ideal)
    }
}

/// Full configuration of a resilient solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// The recovery policy.
    pub policy: RecoveryPolicy,
    /// Block/page size in doubles (512 = one 4 KiB page, the paper's value;
    /// tests use smaller pages so small matrices span several pages).
    pub page_doubles: usize,
    /// Use the block-Jacobi preconditioner (the paper's PCG variant).
    pub preconditioned: bool,
    /// Checkpoints go to local disk (realistic cost) instead of memory.
    pub checkpoint_on_disk: bool,
    /// Worker-thread count assumed by the FEIR time-accounting model
    /// (`None` = the ambient rayon pool size; see
    /// [`ResilienceConfig::effective_threads`]).
    pub threads: Option<usize>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            policy: RecoveryPolicy::Feir,
            page_doubles: feir_sparse::PAGE_DOUBLES,
            preconditioned: false,
            checkpoint_on_disk: false,
            threads: None,
        }
    }
}

impl ResilienceConfig {
    /// Configuration for the given policy with all other fields defaulted.
    pub fn for_policy(policy: RecoveryPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// Builder-style setter for the worker-thread count.
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Worker-thread count used by the solver's time-accounting model (the
    /// FEIR critical-path idle attribution): the explicit
    /// [`ResilienceConfig::threads`] override when set, otherwise the ambient
    /// rayon pool size (which itself honors the `FEIR_NUM_THREADS`
    /// environment variable).
    ///
    /// Note that the strip-mined phases always *execute* on the ambient
    /// rayon pool; an override only changes the accounting. To change actual
    /// execution width, size the pool itself (`FEIR_NUM_THREADS`,
    /// `rayon::ThreadPoolBuilder`, or `ThreadPool::install`) and leave this
    /// at `None` so model and hardware agree.
    pub fn effective_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(rayon::current_num_threads)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(RecoveryPolicy::Feir.name(), "FEIR");
        assert_eq!(RecoveryPolicy::Afeir.name(), "AFEIR");
        assert_eq!(RecoveryPolicy::Checkpoint { interval: 7 }.name(), "ckpt");
        assert_eq!(RecoveryPolicy::Ideal.name(), "ideal");
    }

    #[test]
    fn classification_helpers() {
        assert!(RecoveryPolicy::Feir.is_forward_exact());
        assert!(RecoveryPolicy::Afeir.is_forward_exact());
        assert!(!RecoveryPolicy::LossyRestart.is_forward_exact());
        assert!(!RecoveryPolicy::TrivialReplace.is_forward_exact());
        assert!(!RecoveryPolicy::Ideal.needs_protection());
        assert!(RecoveryPolicy::Trivial.needs_protection());
        assert!(RecoveryPolicy::TrivialReplace.needs_protection());
        assert_eq!(RecoveryPolicy::TrivialReplace.name(), "triv+rr");
    }

    #[test]
    fn compared_set_has_five_methods() {
        assert_eq!(RecoveryPolicy::COMPARED.len(), 5);
        assert!(!RecoveryPolicy::COMPARED.contains(&RecoveryPolicy::Ideal));
    }

    #[test]
    fn effective_threads_prefers_the_explicit_override() {
        let cfg = ResilienceConfig::default().with_threads(Some(6));
        assert_eq!(cfg.effective_threads(), 6);
        let ambient = ResilienceConfig::default().with_threads(None);
        assert_eq!(ambient.effective_threads(), rayon::current_num_threads());
        // A zero override degenerates to one worker instead of panicking.
        let zero = ResilienceConfig::default().with_threads(Some(0));
        assert_eq!(zero.effective_threads(), 1);
    }

    #[test]
    fn default_config_uses_page_sized_blocks() {
        let cfg = ResilienceConfig::default();
        assert_eq!(cfg.page_doubles, 512);
        assert!(!cfg.preconditioned);
        let cfg2 = ResilienceConfig::for_policy(RecoveryPolicy::Trivial);
        assert_eq!(cfg2.policy, RecoveryPolicy::Trivial);
    }
}
