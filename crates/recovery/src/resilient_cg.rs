//! The page-protected, task-decomposed Conjugate Gradient solver.
//!
//! This is the executable heart of the paper: CG (Listing 1) strip-mined into
//! page-sized tasks (Figure 1), with the search direction `d` double-buffered
//! (Listing 2) so the update relation stays solvable, per-page skip bitmasks
//! (Section 3.3.2) so reductions never accumulate garbage, and recovery tasks
//! `r1` / `r2` / `r3` that reconstruct lost pages exactly — either in the
//! critical path (**FEIR**, Figure 2(a)) or overlapped with the reductions
//! (**AFEIR**, Figure 2(b)).
//!
//! The same driver also implements the three baselines the paper compares
//! against (trivial forward recovery, checkpoint/rollback, Lossy Restart) so
//! every method sees the identical fault stream and the identical kernels.
//!
//! ## Iteration structure
//!
//! ```text
//!  β ⇐ ε/ε_old
//!  d_cur ⇐ β·d_prev + g              (strip-mined, per page)
//!  q ⇐ A·d_cur                       (strip-mined, per page)
//!  r1: recover d_cur / q             (FEIR: before ⟨d,q⟩; AFEIR: overlapped)
//!  α ⇐ ε / ⟨d,q⟩
//!  x ⇐ x + α·d_cur ; g ⇐ g − α·q     (strip-mined, per page)
//!  r2/r3: recover g / x              (FEIR: before ε; AFEIR: overlapped)
//!  ε ⇐ ‖g‖²  → convergence check
//! ```

use std::sync::Arc;
use std::time::Instant;

use feir_pagemem::{AccessOutcome, PageRegistry, SkipMask, VectorId};
use feir_solvers::history::{ConvergenceHistory, SolveOptions, StopReason};
use feir_sparse::blocking::BlockPartition;
use feir_sparse::{vecops, BlockJacobi, CsrMatrix, SpmvBackend};
use rayon::prelude::*;

use crate::checkpoint::{CheckpointStore, CheckpointTarget};
use crate::engine::{self, RecoveryPlan};
use crate::interpolate::BlockRecovery;
use crate::lossy;
use crate::policy::{RecoveryPolicy, ResilienceConfig};
use crate::report::{RecoveryAction, RecoveryEvent, RunReport, TimeBuckets};

/// Skip-mask bit assignments, one per protected vector (Section 3.3.2: "each
/// data vector and task output is represented by a bit in this mask").
mod bits {
    pub const X: u32 = 0;
    pub const G: u32 = 1;
    pub const D0: u32 = 2;
    pub const D1: u32 = 3;
    pub const Q: u32 = 4;
    pub const Z: u32 = 5;
}

/// Builder for [`ResilientCg`].
#[derive(Debug, Clone, Default)]
pub struct ResilientCgBuilder {
    config: ResilienceConfig,
}

impl ResilientCgBuilder {
    /// Starts a builder with default configuration (FEIR, page-sized blocks).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the recovery policy.
    pub fn policy(mut self, policy: RecoveryPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the page size in doubles (tests use small pages).
    pub fn page_doubles(mut self, page_doubles: usize) -> Self {
        self.config.page_doubles = page_doubles;
        self
    }

    /// Enables the block-Jacobi preconditioner (the paper's PCG variant).
    pub fn preconditioned(mut self, preconditioned: bool) -> Self {
        self.config.preconditioned = preconditioned;
        self
    }

    /// Writes checkpoints to local disk instead of memory.
    pub fn checkpoint_on_disk(mut self, on_disk: bool) -> Self {
        self.config.checkpoint_on_disk = on_disk;
        self
    }

    /// Overrides the full configuration.
    pub fn config(mut self, config: ResilienceConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the solver for the given system.
    pub fn build<'a>(self, a: &'a CsrMatrix, b: &'a [f64]) -> ResilientCg<'a> {
        ResilientCg::new(a, b, self.config)
    }
}

/// A resilient CG / PCG solver bound to one linear system and one fault
/// registry. Create one instance per run (the protected vectors are registered
/// at construction time so a fault injector can target them).
pub struct ResilientCg<'a> {
    a: &'a CsrMatrix,
    b: &'a [f64],
    config: ResilienceConfig,
    registry: Arc<PageRegistry>,
    partition: BlockPartition,
    recovery: Option<BlockRecovery>,
    preconditioner: Option<BlockJacobi>,
    /// For each output page of the SpMV, the input pages its rows touch.
    touched_pages: Vec<Vec<usize>>,
    /// Storage backend (CSR or SELL-C-σ) for the full-matrix matvecs.
    op: SpmvBackend,
    /// One backend per output page for the skip-masked matvec of
    /// [`Self::phase_matvec`] — built once here so the hot per-page loop
    /// never re-analyzes or re-converts.
    page_ops: Vec<SpmvBackend>,
    /// Registry ids of the protected vectors (registered at construction so a
    /// fault injector can target them before the solve starts).
    ids: VectorIds,
}

/// Registry ids of the protected dynamic vectors.
#[derive(Debug, Clone, Copy)]
struct VectorIds {
    x: VectorId,
    g: VectorId,
    d0: VectorId,
    d1: VectorId,
    q: VectorId,
    z: Option<VectorId>,
}

impl<'a> ResilientCg<'a> {
    /// Creates a solver with the given configuration.
    ///
    /// # Panics
    /// Panics if the matrix is not square or does not match `b`.
    pub fn new(a: &'a CsrMatrix, b: &'a [f64], config: ResilienceConfig) -> Self {
        assert_eq!(a.rows(), a.cols(), "resilient CG requires a square matrix");
        assert_eq!(a.rows(), b.len(), "rhs length mismatch");
        let n = a.rows();
        let partition = BlockPartition::new(n, config.page_doubles);

        let preconditioner = if config.preconditioned {
            Some(BlockJacobi::new(a, partition, true).expect("block-Jacobi construction failed"))
        } else {
            None
        };

        // FEIR / AFEIR / Lossy need the factorized diagonal blocks; when the
        // block-Jacobi preconditioner is present its factorization is reused
        // (which is exactly why the paper picks page-sized Jacobi blocks).
        let needs_recovery = matches!(
            config.policy,
            RecoveryPolicy::Feir | RecoveryPolicy::Afeir | RecoveryPolicy::LossyRestart
        );
        let recovery = if needs_recovery {
            Some(match &preconditioner {
                Some(p) => BlockRecovery::from_diagonal_blocks(p.diagonal_blocks().clone()),
                None => BlockRecovery::new(a, partition, true),
            })
        } else {
            None
        };

        let touched_pages = engine::compute_touched_pages(a, partition);
        let op = SpmvBackend::select(a);
        let page_ops = (0..partition.num_blocks())
            .map(|p| SpmvBackend::select_rows(a, partition.range(p)))
            .collect();

        // Register the protected dynamic vectors up front so fault injectors
        // attached to the registry can target them for the whole run.
        let registry = Arc::new(PageRegistry::new());
        let num_pages = partition.num_blocks();
        let needs_protection = config.policy.needs_protection();
        let ids = if needs_protection {
            VectorIds {
                x: registry.register("x", num_pages),
                g: registry.register("g", num_pages),
                d0: registry.register("d0", num_pages),
                d1: registry.register("d1", num_pages),
                q: registry.register("q", num_pages),
                z: preconditioner
                    .as_ref()
                    .map(|_| registry.register("z", num_pages)),
            }
        } else {
            // The ideal baseline protects nothing; keep placeholder ids.
            VectorIds {
                x: VectorId(0),
                g: VectorId(0),
                d0: VectorId(0),
                d1: VectorId(0),
                q: VectorId(0),
                z: None,
            }
        };

        Self {
            a,
            b,
            config,
            registry,
            partition,
            recovery,
            preconditioner,
            touched_pages,
            op,
            page_ops,
            ids,
        }
    }

    /// The fault registry targeted by this run; hand it to a
    /// [`feir_pagemem::FaultInjector`] to inject errors.
    pub fn registry(&self) -> Arc<PageRegistry> {
        Arc::clone(&self.registry)
    }

    /// The page partition used by the protected vectors.
    pub fn partition(&self) -> BlockPartition {
        self.partition
    }

    /// The configuration in use.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// Runs the solve. Consumes the solver (the protected vectors are bound to
    /// this run's fault registry).
    pub fn solve(self, options: &SolveOptions) -> RunReport {
        match self.config.policy {
            RecoveryPolicy::Ideal => self.solve_ideal(options),
            _ => self.solve_protected(options),
        }
    }

    /// The ideal (non-resilient) baseline: plain CG/PCG with no fault checks.
    fn solve_ideal(self, options: &SolveOptions) -> RunReport {
        let result = match &self.preconditioner {
            Some(p) => feir_solvers::pcg(self.a, self.b, None, p, options),
            None => feir_solvers::cg(self.a, self.b, None, options),
        };
        RunReport {
            policy: RecoveryPolicy::Ideal,
            x: result.x,
            iterations: result.iterations,
            relative_residual: result.relative_residual,
            stop_reason: result.stop_reason,
            elapsed: result.elapsed,
            history: result.history,
            events: Vec::new(),
            faults_discovered: 0,
            pages_recovered: 0,
            rollbacks: 0,
            restarts: 0,
            time: TimeBuckets {
                compute: result.elapsed,
                ..TimeBuckets::default()
            },
        }
    }

    #[allow(clippy::too_many_lines)]
    fn solve_protected(self, options: &SolveOptions) -> RunReport {
        let n = self.a.rows();
        let num_pages = self.partition.num_blocks();
        let policy = self.config.policy;
        let start = Instant::now();
        let norm_b = vecops::norm2(self.b).max(f64::MIN_POSITIVE);

        // Protected dynamic vectors (registered at construction time).
        let VectorIds {
            x: x_id,
            g: g_id,
            d0: d0_id,
            d1: d1_id,
            q: q_id,
            z: z_id,
        } = self.ids;

        let mut x = vec![0.0; n];
        let mut g = self.b.to_vec(); // g = b - A·0
        let mut d0 = vec![0.0; n];
        let mut d1 = vec![0.0; n];
        let mut q = vec![0.0; n];
        let mut z = vec![0.0; n];

        let skip = SkipMask::new(num_pages);
        let mut time = TimeBuckets::default();
        let mut events: Vec<RecoveryEvent> = Vec::new();
        let mut history = ConvergenceHistory::default();
        let mut pages_recovered = 0usize;
        let mut rollbacks = 0usize;
        let mut restarts = 0usize;

        let mut checkpoint_store = match policy {
            RecoveryPolicy::Checkpoint { .. } => Some(if self.config.checkpoint_on_disk {
                CheckpointStore::on_temp_disk()
            } else {
                CheckpointStore::new(CheckpointTarget::Memory)
            }),
            _ => None,
        };

        // Scalars are kept redundantly (registers / stack) and are not part of
        // the page-level error model, as in the paper.
        let mut eps_old = f64::INFINITY;
        let mut stop_reason = StopReason::MaxIterations;
        let mut iterations = 0usize;
        // The configured knob (policy `threads` override, else the ambient
        // pool, which honors FEIR_NUM_THREADS) feeds the idle-time model of
        // the FEIR critical-path accounting.
        let threads = self.config.effective_threads();

        // ε for iteration 0.
        let mark = Instant::now();
        let (mut eps, _skipped) = self.reduce_norm_sq(&g, g_id, bits::G, &skip);
        time.compute += mark.elapsed();

        for t in 0..options.max_iterations {
            let rel = eps.max(0.0).sqrt() / norm_b;
            if options.record_history {
                history.push(t, rel, start.elapsed());
            }
            if rel <= options.tolerance {
                stop_reason = StopReason::Converged;
                iterations = t;
                break;
            }
            iterations = t + 1;

            // Checkpoint if due.
            if let (RecoveryPolicy::Checkpoint { interval }, Some(store)) =
                (policy, checkpoint_store.as_mut())
            {
                if t % interval.max(1) == 0 {
                    let mark = Instant::now();
                    let d_cur_prev = if t % 2 == 0 { &d1 } else { &d0 };
                    store.checkpoint(t, &x, d_cur_prev, &[eps, eps_old]);
                    time.checkpoint += mark.elapsed();
                }
            }

            // Preconditioner: solve M z = g (PCG only).
            let rho = if let Some(p) = &self.preconditioner {
                let mark = Instant::now();
                let z_bit = bits::Z;
                let zid = z_id.expect("z registered when preconditioned");
                self.phase_precondition(p, &g, g_id, &mut z, zid, &skip);
                let (rho, _) = self.reduce_dot(&z, zid, z_bit, &g, g_id, bits::G, &skip);
                time.compute += mark.elapsed();
                rho
            } else {
                eps
            };

            let beta = if eps_old.is_finite() && eps_old != 0.0 {
                rho / eps_old
            } else {
                0.0
            };

            // Double-buffered direction update: d_cur ⇐ β·d_prev + (z|g).
            let (d_cur, d_prev, d_cur_id, d_prev_id, d_cur_bit, d_prev_bit) = if t % 2 == 0 {
                (&mut d0, &d1, d0_id, d1_id, bits::D0, bits::D1)
            } else {
                (&mut d1, &d0, d1_id, d0_id, bits::D1, bits::D0)
            };
            let (update_src, update_src_id, update_src_bit) = match (&self.preconditioner, z_id) {
                (Some(_), Some(zid)) => (&z, zid, bits::Z),
                _ => (&g, g_id, bits::G),
            };

            let mark = Instant::now();
            self.phase_update_direction(
                beta,
                d_prev,
                d_prev_id,
                d_prev_bit,
                update_src,
                update_src_id,
                update_src_bit,
                d_cur,
                d_cur_id,
                d_cur_bit,
                &skip,
            );
            // q ⇐ A·d_cur.
            self.phase_matvec(d_cur, d_cur_id, d_cur_bit, &mut q, q_id, &skip);
            time.compute += mark.elapsed();

            // r1 recovery + ⟨d,q⟩ reduction. FEIR and AFEIR are the *same*
            // engine flow — plan into side buffers, reduce over the valid
            // pages, install, patch the recovered pages' contributions —
            // and differ only in the scheduling flag handed to
            // [`engine::overlap`] (critical path vs. work-stealing pool).
            let dq = match policy {
                RecoveryPolicy::Feir | RecoveryPolicy::Afeir => {
                    let asynchronous = policy == RecoveryPolicy::Afeir;
                    let (planned, reduced) = engine::overlap(
                        asynchronous,
                        || {
                            let mark = Instant::now();
                            let plan = self.plan_r1(
                                beta,
                                d_prev,
                                d_prev_bit,
                                update_src,
                                update_src_bit,
                                d_cur,
                                d_cur_id,
                                d_cur_bit,
                                &q,
                                q_id,
                                &skip,
                                t,
                            );
                            (plan, mark.elapsed())
                        },
                        || {
                            let mark = Instant::now();
                            let reduction = self.reduce_dot(
                                d_cur,
                                d_cur_id,
                                d_cur_bit,
                                &q,
                                q_id,
                                bits::Q,
                                &skip,
                            );
                            (reduction, mark.elapsed())
                        },
                    );
                    let (plan, plan_dur) = planned;
                    let ((mut dq, skipped), reduce_dur) = reduced;
                    pages_recovered += self.apply_fixes(
                        &plan,
                        &mut [(d_cur_id, d_cur_bit, &mut *d_cur), (q_id, bits::Q, &mut q)],
                        &skip,
                    );
                    events.extend(plan.events);
                    // Fix-up: contributions of the pages the reduction
                    // skipped and the plan recovered.
                    for p in skipped {
                        if !self.page_invalid(d_cur_id, d_cur_bit, p, &skip)
                            && !self.page_invalid(q_id, bits::Q, p, &skip)
                        {
                            let range = self.partition.range(p);
                            dq += vecops::dot(&d_cur[range.clone()], &q[range]);
                        }
                    }
                    if asynchronous {
                        // Attribute the overlapped window: compute for the
                        // reduction, recovery for the spare capacity it used.
                        let window = plan_dur.max(reduce_dur);
                        time.compute += window;
                        time.recovery += window;
                    } else {
                        time.recovery += plan_dur;
                        time.idle +=
                            plan_dur.mul_f64((threads.saturating_sub(1)) as f64 / threads as f64);
                        time.compute += reduce_dur;
                    }
                    dq
                }
                _ => {
                    // Baselines: blank-accepting policies never skip, so this
                    // is a plain reduction.
                    let mark = Instant::now();
                    let (dq, _) =
                        self.reduce_dot(d_cur, d_cur_id, d_cur_bit, &q, q_id, bits::Q, &skip);
                    time.compute += mark.elapsed();
                    dq
                }
            };

            if dq == 0.0 || !dq.is_finite() {
                stop_reason = StopReason::Breakdown;
                break;
            }
            let alpha = rho / dq;

            // x ⇐ x + α·d ; g ⇐ g − α·q.
            let mark = Instant::now();
            self.phase_update_iterate(
                alpha, d_cur, d_cur_id, d_cur_bit, &q, q_id, &mut x, x_id, &mut g, g_id, &skip,
            );
            time.compute += mark.elapsed();

            // r2/r3 recovery + ε reduction: the same engine flow as r1.
            let new_eps = match policy {
                RecoveryPolicy::Feir | RecoveryPolicy::Afeir => {
                    let asynchronous = policy == RecoveryPolicy::Afeir;
                    let (planned, reduced) = engine::overlap(
                        asynchronous,
                        || {
                            let mark = Instant::now();
                            let plan = self.plan_r2_r3(&x, x_id, &g, g_id, &skip, t);
                            (plan, mark.elapsed())
                        },
                        || {
                            let mark = Instant::now();
                            let reduction = self.reduce_norm_sq(&g, g_id, bits::G, &skip);
                            (reduction, mark.elapsed())
                        },
                    );
                    let (plan, plan_dur) = planned;
                    let ((mut e, skipped), reduce_dur) = reduced;
                    pages_recovered += self.apply_fixes(
                        &plan,
                        &mut [(x_id, bits::X, &mut x), (g_id, bits::G, &mut g)],
                        &skip,
                    );
                    events.extend(plan.events);
                    for p in skipped {
                        if !self.page_invalid(g_id, bits::G, p, &skip) {
                            let range = self.partition.range(p);
                            e += vecops::norm2_squared(&g[range]);
                        }
                    }
                    if asynchronous {
                        let window = plan_dur.max(reduce_dur);
                        time.compute += window;
                        time.recovery += window;
                    } else {
                        time.recovery += plan_dur;
                        time.idle +=
                            plan_dur.mul_f64((threads.saturating_sub(1)) as f64 / threads as f64);
                        time.compute += reduce_dur;
                    }
                    e
                }
                _ => {
                    let mark = Instant::now();
                    let (e, _) = self.reduce_norm_sq(&g, g_id, bits::G, &skip);
                    time.compute += mark.elapsed();
                    e
                }
            };

            // Baseline policies react to faults at the end of the iteration.
            match policy {
                RecoveryPolicy::Trivial => {
                    let mark = Instant::now();
                    let blanked = self.trivial_sweep(
                        &mut [
                            (&mut x, x_id, "x"),
                            (&mut g, g_id, "g"),
                            (&mut d0, d0_id, "d0"),
                            (&mut d1, d1_id, "d1"),
                            (&mut q, q_id, "q"),
                        ],
                        t,
                        &mut events,
                    );
                    pages_recovered += blanked;
                    // Blank pages are accepted as valid data from here on.
                    skip.clear_all();
                    time.recovery += mark.elapsed();
                }
                RecoveryPolicy::TrivialReplace if !self.registry.all_healthy() => {
                    let mark = Instant::now();
                    // Trivial blank-accept of every lost page ...
                    let blanked = self.trivial_sweep(
                        &mut [
                            (&mut x, x_id, "x"),
                            (&mut g, g_id, "g"),
                            (&mut d0, d0_id, "d0"),
                            (&mut d1, d1_id, "d1"),
                            (&mut q, q_id, "q"),
                        ],
                        t,
                        &mut events,
                    );
                    pages_recovered += blanked;
                    if let Some(zid) = z_id {
                        self.absorb_faults(&mut z, zid);
                        for p in self.registry.lost_pages(zid) {
                            self.registry.mark_recovered(zid, p);
                        }
                    }
                    // ... then residual replacement: recompute g from the
                    // blanked iterate and reset the Krylov space, so the
                    // accepted blanks become a consistent (if worse) state
                    // instead of silently breaking the recurrences.
                    self.op.spmv_parallel(self.a, &x, &mut g);
                    g.par_iter_mut()
                        .zip(self.b.par_iter())
                        .for_each(|(gi, bi)| *gi = bi - *gi);
                    d0.iter_mut().for_each(|v| *v = 0.0);
                    d1.iter_mut().for_each(|v| *v = 0.0);
                    eps_old = f64::INFINITY;
                    eps = vecops::norm2_squared(&g);
                    restarts += 1;
                    skip.clear_all();
                    time.recovery += mark.elapsed();
                    continue;
                }
                RecoveryPolicy::Checkpoint { .. } if !self.registry.all_healthy() => {
                    let mark = Instant::now();
                    // Blank / absorb every outstanding fault, then roll back.
                    for (vec, id) in [
                        (&mut x, x_id),
                        (&mut g, g_id),
                        (&mut d0, d0_id),
                        (&mut d1, d1_id),
                        (&mut q, q_id),
                        (&mut z, z_id.unwrap_or(q_id)),
                    ] {
                        self.absorb_faults(vec, id);
                    }
                    let store = checkpoint_store.as_mut().expect("store exists");
                    let mut scalars = Vec::new();
                    // The restored direction must act as d_prev of the
                    // *next* loop iteration (t+1): that is buffer 0 when
                    // t is even, buffer 1 when t is odd.
                    let d_target = if t % 2 == 0 { &mut d0 } else { &mut d1 };
                    if let Some(resume) = store.rollback(&mut x, d_target, &mut scalars) {
                        rollbacks += 1;
                        events.push(RecoveryEvent {
                            iteration: t,
                            vector: "x,d".into(),
                            page: 0,
                            action: RecoveryAction::Rollback,
                        });
                        // Recompute the residual from the restored iterate.
                        self.op.spmv_parallel(self.a, &x, &mut g);
                        g.par_iter_mut()
                            .zip(self.b.par_iter())
                            .for_each(|(gi, bi)| *gi = bi - *gi);
                        eps_old = scalars.get(1).copied().unwrap_or(f64::INFINITY);
                        eps = vecops::norm2_squared(&g);
                        let _ = resume;
                        // The rollback restored or will recompute every
                        // vector: clear all outstanding page-loss state.
                        for id in [x_id, g_id, d0_id, d1_id, q_id, z_id.unwrap_or(q_id)] {
                            for p in self.registry.lost_pages(id) {
                                self.registry.mark_recovered(id, p);
                            }
                        }
                        skip.clear_all();
                        time.checkpoint += mark.elapsed();
                        continue;
                    }
                    time.checkpoint += mark.elapsed();
                }
                RecoveryPolicy::LossyRestart if !self.registry.all_healthy() => {
                    let mark = Instant::now();
                    // Blank every lost page, then interpolate x and restart.
                    let lost_x = {
                        self.absorb_faults(&mut x, x_id);
                        self.registry.lost_pages(x_id)
                    };
                    for (vec, id) in [
                        (&mut g, g_id),
                        (&mut d0, d0_id),
                        (&mut d1, d1_id),
                        (&mut q, q_id),
                        (&mut z, z_id.unwrap_or(q_id)),
                    ] {
                        self.absorb_faults(vec, id);
                        for p in self.registry.lost_pages(id) {
                            self.registry.mark_recovered(id, p);
                        }
                    }
                    // Lossy interpolation of the lost iterate pages.
                    let recovery = self.recovery.as_ref().expect("lossy needs blocks");
                    let lost_pages = self.registry.lost_pages(x_id);
                    let all_lost: Vec<usize> =
                        lost_pages.iter().chain(lost_x.iter()).copied().collect();
                    let recovered = lossy::lossy_interpolate_in_place(
                        self.a,
                        self.b,
                        &mut x,
                        recovery.diagonal_blocks(),
                        &all_lost,
                    );
                    pages_recovered += recovered;
                    for p in &all_lost {
                        self.registry.mark_recovered(x_id, *p);
                        events.push(RecoveryEvent {
                            iteration: t,
                            vector: "x".into(),
                            page: *p,
                            action: RecoveryAction::LossyInterpolation,
                        });
                    }
                    // Restart: recompute g, reset the Krylov space.
                    self.op.spmv_parallel(self.a, &x, &mut g);
                    g.par_iter_mut()
                        .zip(self.b.par_iter())
                        .for_each(|(gi, bi)| *gi = bi - *gi);
                    d0.iter_mut().for_each(|v| *v = 0.0);
                    d1.iter_mut().for_each(|v| *v = 0.0);
                    eps_old = f64::INFINITY;
                    eps = vecops::norm2_squared(&g);
                    restarts += 1;
                    skip.clear_all();
                    time.recovery += mark.elapsed();
                    continue;
                }
                _ => {}
            }

            eps_old = if self.preconditioner.is_some() {
                rho
            } else {
                eps
            };
            eps = new_eps;
        }

        // Final explicit residual check.
        let mut residual = vec![0.0; n];
        self.op.spmv(self.a, &x, &mut residual);
        for (ri, bi) in residual.iter_mut().zip(self.b) {
            *ri = bi - *ri;
        }
        let relative_residual = vecops::norm2(&residual) / norm_b;
        if relative_residual <= options.tolerance {
            stop_reason = StopReason::Converged;
        } else if stop_reason == StopReason::Converged {
            // The page-level ε said converged but the true residual disagrees
            // (possible under trivial recovery): report honestly.
            stop_reason = StopReason::MaxIterations;
        }

        RunReport {
            policy,
            x,
            iterations,
            relative_residual,
            stop_reason,
            elapsed: start.elapsed(),
            history,
            events,
            faults_discovered: self.registry.discovered_count(),
            pages_recovered,
            rollbacks,
            restarts,
            time,
        }
    }

    // ----- page-level phases -------------------------------------------------

    /// True if page `p` of the vector is unusable (lost, poisoned, or marked
    /// skipped). Reading the state counts as an access, which is how lazily
    /// reported (scrubbed) errors surface — exactly like a SIGBUS on touch.
    fn page_invalid(&self, id: VectorId, bit: u32, p: usize, skip: &SkipMask) -> bool {
        if skip.is_set(p, bit) {
            return true;
        }
        !matches!(self.registry.on_access(id, p), AccessOutcome::Ok)
    }

    /// Marks an output page valid again after it has been fully overwritten.
    ///
    /// Writing a poisoned page still traps in the real hardware model, so the
    /// access is recorded first (counting the discovery) before the page is
    /// declared healthy — the full overwrite is itself the recovery.
    fn mark_output_valid(&self, id: VectorId, bit: u32, p: usize, skip: &SkipMask) {
        let _ = self.registry.on_access(id, p);
        self.registry.mark_recovered(id, p);
        skip.clear(p, bit);
    }

    /// `d_cur ⇐ β·d_prev + src` per page, with skip propagation.
    #[allow(clippy::too_many_arguments)]
    fn phase_update_direction(
        &self,
        beta: f64,
        d_prev: &[f64],
        d_prev_id: VectorId,
        d_prev_bit: u32,
        src: &[f64],
        src_id: VectorId,
        src_bit: u32,
        d_cur: &mut [f64],
        d_cur_id: VectorId,
        d_cur_bit: u32,
        skip: &SkipMask,
    ) {
        let partition = self.partition;
        d_cur
            .par_chunks_mut(partition.block_size())
            .enumerate()
            .for_each(|(p, out)| {
                let prev_ok = !self.page_invalid(d_prev_id, d_prev_bit, p, skip);
                let src_ok = !self.page_invalid(src_id, src_bit, p, skip);
                if prev_ok && src_ok {
                    let range = partition.range(p);
                    for ((o, dp), s) in out.iter_mut().zip(&d_prev[range.clone()]).zip(&src[range])
                    {
                        *o = beta * dp + s;
                    }
                    self.mark_output_valid(d_cur_id, d_cur_bit, p, skip);
                } else {
                    skip.set(p, d_cur_bit);
                }
            });
    }

    /// `q ⇐ A·d_cur` per output page; a page is skipped when any input page
    /// its rows touch is invalid.
    fn phase_matvec(
        &self,
        d_cur: &[f64],
        d_cur_id: VectorId,
        d_cur_bit: u32,
        q: &mut [f64],
        q_id: VectorId,
        skip: &SkipMask,
    ) {
        let partition = self.partition;
        q.par_chunks_mut(partition.block_size())
            .enumerate()
            .for_each(|(p, out)| {
                let inputs_ok = self.touched_pages[p]
                    .iter()
                    .all(|&ip| !self.page_invalid(d_cur_id, d_cur_bit, ip, skip));
                if inputs_ok {
                    self.page_ops[p].spmv(self.a, d_cur, out);
                    self.mark_output_valid(q_id, bits::Q, p, skip);
                } else {
                    skip.set(p, bits::Q);
                }
            });
    }

    /// PCG preconditioner application `M z = g` per page (block-Jacobi is
    /// block-local so this is an exact per-page operation).
    fn phase_precondition(
        &self,
        preconditioner: &BlockJacobi,
        g: &[f64],
        g_id: VectorId,
        z: &mut [f64],
        z_id: VectorId,
        skip: &SkipMask,
    ) {
        let partition = self.partition;
        z.par_chunks_mut(partition.block_size())
            .enumerate()
            .for_each(|(p, out)| {
                if !self.page_invalid(g_id, bits::G, p, skip) {
                    let range = partition.range(p);
                    preconditioner.apply_block(p, &g[range], out);
                    self.mark_output_valid(z_id, bits::Z, p, skip);
                } else {
                    skip.set(p, bits::Z);
                }
            });
    }

    /// `x ⇐ x + α·d ; g ⇐ g − α·q` per page, with skip propagation.
    #[allow(clippy::too_many_arguments)]
    fn phase_update_iterate(
        &self,
        alpha: f64,
        d_cur: &[f64],
        d_cur_id: VectorId,
        d_cur_bit: u32,
        q: &[f64],
        q_id: VectorId,
        x: &mut [f64],
        x_id: VectorId,
        g: &mut [f64],
        g_id: VectorId,
        skip: &SkipMask,
    ) {
        let partition = self.partition;
        let block = partition.block_size();
        x.par_chunks_mut(block)
            .zip(g.par_chunks_mut(block))
            .enumerate()
            .for_each(|(p, (xp, gp))| {
                let range = partition.range(p);
                let d_ok = !self.page_invalid(d_cur_id, d_cur_bit, p, skip);
                let q_ok = !self.page_invalid(q_id, bits::Q, p, skip);
                let x_ok = !self.page_invalid(x_id, bits::X, p, skip);
                let g_ok = !self.page_invalid(g_id, bits::G, p, skip);
                if d_ok && x_ok {
                    for (xi, di) in xp.iter_mut().zip(&d_cur[range.clone()]) {
                        *xi += alpha * di;
                    }
                } else {
                    skip.set(p, bits::X);
                }
                if q_ok && g_ok {
                    for (gi, qi) in gp.iter_mut().zip(&q[range]) {
                        *gi -= alpha * qi;
                    }
                } else {
                    skip.set(p, bits::G);
                }
            });
    }

    /// Page-blocked dot product that skips invalid pages; returns the partial
    /// sum and the skipped pages.
    #[allow(clippy::too_many_arguments)]
    fn reduce_dot(
        &self,
        u: &[f64],
        u_id: VectorId,
        u_bit: u32,
        v: &[f64],
        v_id: VectorId,
        v_bit: u32,
        skip: &SkipMask,
    ) -> (f64, Vec<usize>) {
        let partition = self.partition;
        let results: Vec<(usize, Option<f64>)> = (0..partition.num_blocks())
            .into_par_iter()
            .map(|p| {
                if self.page_invalid(u_id, u_bit, p, skip)
                    || self.page_invalid(v_id, v_bit, p, skip)
                {
                    (p, None)
                } else {
                    let range = partition.range(p);
                    (p, Some(vecops::dot(&u[range.clone()], &v[range])))
                }
            })
            .collect();
        let mut sum = 0.0;
        let mut skipped = Vec::new();
        for (p, value) in results {
            match value {
                Some(v) => sum += v,
                None => skipped.push(p),
            }
        }
        (sum, skipped)
    }

    /// Page-blocked squared norm with skipping.
    fn reduce_norm_sq(
        &self,
        v: &[f64],
        v_id: VectorId,
        v_bit: u32,
        skip: &SkipMask,
    ) -> (f64, Vec<usize>) {
        self.reduce_dot(v, v_id, v_bit, v, v_id, v_bit, skip)
    }

    // ----- recovery tasks ----------------------------------------------------

    /// r1 (Figure 1(b)): plan the recovery of lost/skipped pages of `d_cur`
    /// and `q`. The plan only *reads* solver state and writes the
    /// reconstructed pages into side buffers, so it can run concurrently with
    /// the ⟨d,q⟩ reduction (AFEIR) without touching the pages the reduction is
    /// scanning; [`Self::apply_fixes`] installs the pages afterwards — which
    /// corresponds to the paper's communication through atomic bitmasks rather
    /// than task dependences.
    #[allow(clippy::too_many_arguments)]
    fn plan_r1(
        &self,
        beta: f64,
        d_prev: &[f64],
        d_prev_bit: u32,
        src: &[f64],
        src_bit: u32,
        d_cur: &[f64],
        d_cur_id: VectorId,
        d_cur_bit: u32,
        q: &[f64],
        q_id: VectorId,
        skip: &SkipMask,
        iteration: usize,
    ) -> RecoveryPlan {
        let recovery = self.recovery.as_ref().expect("FEIR/AFEIR carry a recovery");
        let partition = self.partition;
        let mut plan = RecoveryPlan::default();

        let d_pages: Vec<usize> = (0..partition.num_blocks())
            .filter(|&p| self.page_invalid(d_cur_id, d_cur_bit, p, skip))
            .collect();
        let q_lost: Vec<usize> = (0..partition.num_blocks())
            .filter(|&p| self.page_invalid(q_id, bits::Q, p, skip))
            .collect();

        if d_pages.is_empty() && q_lost.is_empty() {
            return plan;
        }

        // Repaired view of d: start from the current data and patch the lost
        // pages as they are reconstructed (needed for the q recomputation).
        let mut d_view = d_cur.to_vec();

        for &p in &d_pages {
            let range = partition.range(p);
            let prev_ok = !skip.is_set(p, d_prev_bit);
            let src_ok = !skip.is_set(p, src_bit);
            if prev_ok && src_ok {
                // Linear update relation d_cur = β·d_prev + src: exact and cheap.
                let mut out = vec![0.0; range.len()];
                for ((o, dp), s) in out
                    .iter_mut()
                    .zip(&d_prev[range.clone()])
                    .zip(&src[range.clone()])
                {
                    *o = beta * dp + s;
                }
                d_view[range].copy_from_slice(&out);
                plan.fix(d_cur_id, d_cur_bit, p, out);
                plan.push(iteration, "d", p, RecoveryAction::ExactInterpolation);
            } else if !q_lost.contains(&p) {
                // Fall back to the inverse matvec relation A_ii d_i = q_i − Σ….
                let mut out = vec![0.0; range.len()];
                if recovery.recover_matvec_rhs(self.a, q, &d_view, p, &mut out) {
                    d_view[range].copy_from_slice(&out);
                    plan.fix(d_cur_id, d_cur_bit, p, out);
                    plan.push(iteration, "d", p, RecoveryAction::ExactInterpolation);
                } else {
                    plan.give_up(d_cur_id, d_cur_bit, p);
                    plan.push(iteration, "d", p, RecoveryAction::Ignored);
                }
            } else {
                // Simultaneous errors on related data: ignored (Section 2.4).
                plan.give_up(d_cur_id, d_cur_bit, p);
                plan.push(iteration, "d", p, RecoveryAction::Ignored);
            }
        }

        let unrecovered_d = plan.abandoned_pages(d_cur_id);
        for &p in &q_lost {
            let inputs_ok = self.touched_pages[p]
                .iter()
                .all(|ip| !unrecovered_d.contains(ip));
            if inputs_ok {
                let range = partition.range(p);
                let mut out = vec![0.0; range.len()];
                recovery.recover_matvec_lhs(self.a, &d_view, p, &mut out);
                plan.fix(q_id, bits::Q, p, out);
                plan.push(iteration, "q", p, RecoveryAction::ExactInterpolation);
            } else {
                plan.give_up(q_id, bits::Q, p);
                plan.push(iteration, "q", p, RecoveryAction::Ignored);
            }
        }
        plan
    }

    /// r2/r3 (Figure 1(b)): plan the recovery of lost/skipped pages of `x` and
    /// `g`, reading the solver state only (see [`Self::plan_r1`]).
    fn plan_r2_r3(
        &self,
        x: &[f64],
        x_id: VectorId,
        g: &[f64],
        g_id: VectorId,
        skip: &SkipMask,
        iteration: usize,
    ) -> RecoveryPlan {
        let recovery = self.recovery.as_ref().expect("FEIR/AFEIR carry a recovery");
        let partition = self.partition;
        let mut plan = RecoveryPlan::default();

        let invalid = |id: VectorId, bit: u32| -> Vec<usize> {
            (0..partition.num_blocks())
                .filter(|&p| self.page_invalid(id, bit, p, skip))
                .collect()
        };
        let x_pages = invalid(x_id, bits::X);
        let g_pages = invalid(g_id, bits::G);
        if x_pages.is_empty() && g_pages.is_empty() {
            return plan;
        }

        let mut x_view = x.to_vec();

        // Recover x first: A_ii x_i = b_i − g_i − Σ_{j≠i} A_ij x_j. Needs g_i
        // and the other x pages; simultaneous loss of x_i and g_i is the
        // "related data" case and is ignored.
        let (recoverable, _, conflicting) = engine::split_related(&x_pages, &g_pages);
        if recoverable.len() > 1 {
            // Combined multi-block solve (Section 2.4, case 1).
            if let Some(values) =
                recovery.recover_iterate_multi(self.a, self.b, g, &x_view, &recoverable, true)
            {
                let mut offset = 0;
                for &p in &recoverable {
                    let range = partition.range(p);
                    let out = values[offset..offset + range.len()].to_vec();
                    offset += range.len();
                    x_view[range].copy_from_slice(&out);
                    plan.fix(x_id, bits::X, p, out);
                    plan.push(iteration, "x", p, RecoveryAction::ExactInterpolation);
                }
            } else {
                for &p in &recoverable {
                    plan.give_up(x_id, bits::X, p);
                    plan.push(iteration, "x", p, RecoveryAction::Ignored);
                }
            }
        } else {
            for &p in &recoverable {
                let range = partition.range(p);
                let mut out = vec![0.0; range.len()];
                if recovery.recover_iterate_rhs(self.a, self.b, g, &x_view, p, &mut out) {
                    x_view[range].copy_from_slice(&out);
                    plan.fix(x_id, bits::X, p, out);
                    plan.push(iteration, "x", p, RecoveryAction::ExactInterpolation);
                } else {
                    plan.give_up(x_id, bits::X, p);
                    plan.push(iteration, "x", p, RecoveryAction::Ignored);
                }
            }
        }
        for &p in &conflicting {
            plan.give_up(x_id, bits::X, p);
            plan.push(iteration, "x", p, RecoveryAction::Ignored);
        }

        // Then recover g from the repaired iterate: g_i = b_i − Σ_j A_ij x_j.
        let unrecovered_x = plan.abandoned_pages(x_id);
        for &p in &g_pages {
            let inputs_ok = self.touched_pages[p]
                .iter()
                .all(|ip| !unrecovered_x.contains(ip));
            if inputs_ok {
                let range = partition.range(p);
                let mut out = vec![0.0; range.len()];
                recovery.recover_residual_lhs(self.a, self.b, &x_view, p, &mut out);
                plan.fix(g_id, bits::G, p, out);
                plan.push(iteration, "g", p, RecoveryAction::ExactInterpolation);
            } else {
                plan.give_up(g_id, bits::G, p);
                plan.push(iteration, "g", p, RecoveryAction::Ignored);
            }
        }
        plan
    }

    /// Installs a recovery plan: copies the reconstructed pages into the live
    /// vectors and clears their lost / skip state. Pages the plan gave up on
    /// are also marked valid (blank data), matching the paper's evaluation
    /// where unrecoverable simultaneous errors are "simply ignored".
    fn apply_fixes(
        &self,
        plan: &RecoveryPlan,
        targets: &mut [(VectorId, u32, &mut [f64])],
        skip: &SkipMask,
    ) -> usize {
        let mut recovered = 0;
        for (id, bit, page, values) in &plan.fixes {
            if let Some((_, _, data)) = targets.iter_mut().find(|(tid, _, _)| tid == id) {
                let range = self.partition.range(*page);
                data[range].copy_from_slice(values);
                self.mark_output_valid(*id, *bit, *page, skip);
                recovered += 1;
            }
        }
        for (id, bit, page) in &plan.abandoned {
            if let Some((_, _, data)) = targets.iter_mut().find(|(tid, _, _)| tid == id) {
                let range = self.partition.range(*page);
                for v in &mut data[range] {
                    *v = 0.0;
                }
                self.mark_output_valid(*id, *bit, *page, skip);
            }
        }
        recovered
    }

    /// Trivial recovery: blank every lost page and keep going.
    fn trivial_sweep(
        &self,
        vectors: &mut [(&mut Vec<f64>, VectorId, &str)],
        iteration: usize,
        events: &mut Vec<RecoveryEvent>,
    ) -> usize {
        let mut blanked = 0;
        for (data, id, name) in vectors.iter_mut() {
            // Materialise poisoned pages, then accept the blanks.
            for p in 0..self.partition.num_blocks() {
                let _ = self.registry.on_access(*id, p);
            }
            for p in self.registry.lost_pages(*id) {
                let range = self.partition.range(p);
                for v in &mut data[range] {
                    *v = 0.0;
                }
                self.registry.mark_recovered(*id, p);
                blanked += 1;
                events.push(RecoveryEvent {
                    iteration,
                    vector: (*name).to_string(),
                    page: p,
                    action: RecoveryAction::AcceptBlank,
                });
            }
        }
        blanked
    }

    /// Blanks the data of every currently-lost page of a vector (without
    /// marking it recovered).
    fn absorb_faults(&self, data: &mut [f64], id: VectorId) {
        for p in 0..self.partition.num_blocks() {
            let _ = self.registry.on_access(id, p);
        }
        for p in self.registry.lost_pages(id) {
            let range = self.partition.range(p);
            for v in &mut data[range] {
                *v = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_pagemem::{FaultInjector, InjectionPlan};
    use feir_sparse::generators::{manufactured_rhs, poisson_2d};
    use std::time::Duration;

    fn small_options() -> SolveOptions {
        SolveOptions::default().with_tolerance(1e-10)
    }

    fn build<'a>(
        a: &'a CsrMatrix,
        b: &'a [f64],
        policy: RecoveryPolicy,
        preconditioned: bool,
    ) -> ResilientCg<'a> {
        // Small pages so the little test matrices span many pages.
        ResilientCgBuilder::new()
            .policy(policy)
            .page_doubles(64)
            .preconditioned(preconditioned)
            .build(a, b)
    }

    #[test]
    fn fault_free_runs_match_ideal_cg_iterations() {
        let a = poisson_2d(16);
        let (_, b) = manufactured_rhs(&a, 4);
        let ideal = build(&a, &b, RecoveryPolicy::Ideal, false).solve(&small_options());
        assert!(ideal.converged());
        for policy in [
            RecoveryPolicy::Feir,
            RecoveryPolicy::Afeir,
            RecoveryPolicy::Trivial,
            RecoveryPolicy::LossyRestart,
            RecoveryPolicy::Checkpoint { interval: 50 },
        ] {
            let report = build(&a, &b, policy, false).solve(&small_options());
            assert!(report.converged(), "{policy:?} did not converge");
            assert!(
                (report.iterations as i64 - ideal.iterations as i64).abs() <= 1,
                "{policy:?}: {} vs ideal {}",
                report.iterations,
                ideal.iterations
            );
            assert!(report.relative_residual <= 1e-9);
            assert_eq!(report.faults_discovered, 0);
        }
    }

    #[test]
    fn feir_recovers_single_error_exactly() {
        let a = poisson_2d(20);
        let (x_true, b) = manufactured_rhs(&a, 9);
        let ideal = build(&a, &b, RecoveryPolicy::Ideal, false).solve(&small_options());

        let solver = build(&a, &b, RecoveryPolicy::Feir, false);
        let registry = solver.registry();
        // Inject into a page of x ("x" is the first registered vector) after a
        // short delay so some iterations have happened.
        let injector = FaultInjector::start(
            Arc::clone(&registry),
            InjectionPlan::Scheduled(vec![(Duration::from_millis(5), 2)]),
        );
        let report = solver.solve(&small_options());
        injector.stop();
        assert!(report.converged());
        // Exact recovery must not disturb convergence meaningfully.
        assert!(
            report.iterations <= ideal.iterations + 3,
            "FEIR {} vs ideal {}",
            report.iterations,
            ideal.iterations
        );
        let err: f64 = report
            .x
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6);
    }

    #[test]
    fn afeir_recovers_under_injection_stream() {
        let a = poisson_2d(20);
        let (_, b) = manufactured_rhs(&a, 2);
        let solver = build(&a, &b, RecoveryPolicy::Afeir, false);
        let registry = solver.registry();
        let injector = FaultInjector::start(
            registry,
            InjectionPlan::Exponential {
                mtbe: Duration::from_millis(3),
                seed: 5,
            },
        );
        let report = solver.solve(&small_options());
        injector.stop();
        assert!(report.converged(), "AFEIR failed to converge under errors");
        assert!(report.relative_residual <= 1e-9);
    }

    #[test]
    fn checkpoint_policy_rolls_back_and_converges() {
        let a = poisson_2d(20);
        let (_, b) = manufactured_rhs(&a, 3);
        let solver = build(&a, &b, RecoveryPolicy::Checkpoint { interval: 10 }, false);
        let registry = solver.registry();
        let injector = FaultInjector::start(
            registry,
            InjectionPlan::Scheduled(vec![(Duration::from_millis(4), 1)]),
        );
        let report = solver.solve(&small_options());
        injector.stop();
        assert!(report.converged());
        if report.faults_discovered > 0 {
            assert!(report.rollbacks >= 1);
        }
    }

    #[test]
    fn lossy_restart_recovers_and_converges() {
        let a = poisson_2d(20);
        let (_, b) = manufactured_rhs(&a, 8);
        let solver = build(&a, &b, RecoveryPolicy::LossyRestart, false);
        let registry = solver.registry();
        let injector = FaultInjector::start(
            registry,
            InjectionPlan::Scheduled(vec![(Duration::from_millis(4), 0)]),
        );
        let report = solver.solve(&small_options());
        injector.stop();
        assert!(report.converged());
        if report.faults_discovered > 0 {
            assert!(report.restarts >= 1);
        }
    }

    #[test]
    fn trivial_policy_accepts_blank_pages_and_still_terminates() {
        let a = poisson_2d(16);
        let (_, b) = manufactured_rhs(&a, 6);
        let solver = build(&a, &b, RecoveryPolicy::Trivial, false);
        let registry = solver.registry();
        let injector = FaultInjector::start(
            registry,
            InjectionPlan::Scheduled(vec![(Duration::from_millis(3), 4)]),
        );
        let report = solver.solve(&small_options().with_max_iterations(5_000));
        injector.stop();
        // Trivial recovery has no convergence guarantee, but it must not hang
        // or produce NaN.
        assert!(report.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn preconditioned_feir_converges_faster_than_plain() {
        let a = feir_sparse::generators::anisotropic_2d(24, 0.05);
        let (_, b) = manufactured_rhs(&a, 12);
        let plain = build(&a, &b, RecoveryPolicy::Feir, false).solve(&small_options());
        let pre = build(&a, &b, RecoveryPolicy::Feir, true).solve(&small_options());
        assert!(plain.converged() && pre.converged());
        assert!(
            pre.iterations < plain.iterations,
            "PCG {} vs CG {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn registry_counts_injected_and_recovered_pages() {
        let a = poisson_2d(16);
        let (_, b) = manufactured_rhs(&a, 1);
        let solver = build(&a, &b, RecoveryPolicy::Feir, false);
        let registry = solver.registry();
        // Directly poison two pages of the iterate x (vector index 0) before
        // solving: x is never fully overwritten, so the loss must be repaired
        // by the r3 recovery task and show up in the event log.
        registry.inject(VectorId(0), 0);
        registry.inject(VectorId(0), 1);
        let report = solver.solve(&small_options());
        assert!(report.converged());
        assert!(report.faults_discovered >= 1);
        assert!(!report.events.is_empty());
        assert!(report.pages_recovered >= 1);
    }

    #[test]
    fn history_is_recorded_with_timestamps() {
        let a = poisson_2d(12);
        let (_, b) = manufactured_rhs(&a, 5);
        let report = build(&a, &b, RecoveryPolicy::Afeir, false).solve(&small_options());
        assert!(report.history.len() >= 2);
        let (first_iter, _, first_time) = report.history.samples[0];
        let (last_iter, last_res, last_time) = *report.history.samples.last().unwrap();
        assert_eq!(first_iter, 0);
        assert!(last_iter > first_iter);
        assert!(last_time >= first_time);
        assert!(last_res < 1e-8);
    }

    #[test]
    fn time_buckets_are_populated() {
        let a = poisson_2d(16);
        let (_, b) = manufactured_rhs(&a, 7);
        let feir = build(&a, &b, RecoveryPolicy::Feir, false).solve(&small_options());
        assert!(feir.time.compute > Duration::ZERO);
        assert!(feir.time.recovery > Duration::ZERO);
        let ideal = build(&a, &b, RecoveryPolicy::Ideal, false).solve(&small_options());
        assert_eq!(ideal.time.recovery, Duration::ZERO);
    }
}
