//! # feir-recovery
//!
//! The paper's primary contribution: **Forward Exact Interpolation Recovery**
//! (FEIR) and its asynchronous variant (AFEIR) for Detected-and-Uncorrected
//! memory errors in iterative solvers, together with the state-of-the-art
//! techniques it is compared against (Lossy Restart, checkpoint/rollback and
//! trivial forward recovery).
//!
//! The crate provides:
//!
//! * [`engine`] — the solver-agnostic **resilient iteration engine**: the
//!   [`RecoverableIteration`] trait describing
//!   a solver's algebraic relations per protected vector, the coupled-row
//!   page-reconstruction kernels, scrub-point fault materialisation, the
//!   related-data conflict split and the FEIR/AFEIR overlap scheduler —
//!   shared by the shared-memory solver below and `feir-dist`'s distributed
//!   CG/PCG;
//! * [`interpolate`] — the exact block recoveries of Table 1: direct (lhs)
//!   recomputation and inverse (rhs) diagonal-block solves, including the
//!   combined multi-block solve for simultaneous errors (Section 2.4);
//! * [`lossy`] — the Lossy Restart adapted from Langou et al.'s Lossy
//!   Approach, plus helpers used by the property tests of Theorems 1–3;
//! * [`checkpoint`] — periodic checkpointing of `x` and `d` with the optimal
//!   interval computation used by the paper's rollback baseline;
//! * [`policy`] — the [`RecoveryPolicy`] switch
//!   selecting between Ideal, Trivial, Checkpoint, Lossy Restart, FEIR and
//!   AFEIR;
//! * [`resilient_cg`] — the page-protected, task-decomposed CG / PCG solver
//!   (double-buffered `d`, skip bitmasks, per-iteration recovery tasks either
//!   in the critical path or overlapped) driving every experiment;
//! * [`report`] — run reports with convergence history, recovery events and
//!   the useful/runtime/imbalance time breakdown of Table 3.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod interpolate;
pub mod lossy;
pub mod policy;
pub mod report;
pub mod resilient_cg;

pub use checkpoint::{optimal_checkpoint_interval, CheckpointStore};
pub use engine::{
    CgRelations, MergedCgRelations, MergedPcgRelations, PcgRelations, RecoverableIteration,
};
pub use interpolate::BlockRecovery;
pub use lossy::lossy_interpolate_block;
pub use policy::{RecoveryPolicy, ResilienceConfig};
pub use report::{DistributedFaultReport, RankFaultStats, RecoveryEvent, RunReport, TimeBuckets};
pub use resilient_cg::{ResilientCg, ResilientCgBuilder};
