//! Run reports: convergence, recovery events and time accounting.

use std::time::Duration;

use feir_solvers::history::{ConvergenceHistory, StopReason};
use serde::{Deserialize, Serialize};

use crate::policy::RecoveryPolicy;

/// What a recovery did about one lost page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// Exact forward interpolation (lhs recomputation or rhs block solve).
    ExactInterpolation,
    /// Lossy block-Jacobi interpolation followed by a restart.
    LossyInterpolation,
    /// Rollback to the last checkpoint.
    Rollback,
    /// Blank page accepted as-is (trivial recovery).
    AcceptBlank,
    /// The error could not be recovered (simultaneous related losses) and was
    /// ignored, as in the paper's evaluation ("no fallback is used").
    Ignored,
}

/// One recovery event, for tracing and debugging.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// Solver iteration at which the loss was handled.
    pub iteration: usize,
    /// Name of the affected vector.
    pub vector: String,
    /// Page index within the vector.
    pub page: usize,
    /// What was done.
    pub action: RecoveryAction,
}

/// Wall-time buckets accumulated by the resilient solver, used to reproduce
/// the per-state breakdown of Table 3.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TimeBuckets {
    /// Strip-mined solver computation (SpMV, axpy, dots).
    pub compute: Duration,
    /// Recovery-task work (scanning bitmasks, interpolating, restarting).
    pub recovery: Duration,
    /// Checkpoint writing and rollback reading.
    pub checkpoint: Duration,
    /// Task-creation / scheduling / bookkeeping overhead.
    pub runtime: Duration,
    /// Estimated idle time (imbalance): wall time not attributable to the
    /// other buckets, scaled by the worker count.
    pub idle: Duration,
}

impl TimeBuckets {
    /// Total accounted time.
    pub fn total(&self) -> Duration {
        self.compute + self.recovery + self.checkpoint + self.runtime + self.idle
    }

    /// Fraction of time spent doing useful solver work.
    pub fn useful_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        self.compute.as_secs_f64() / total
    }

    /// Fraction of time spent in runtime-like activities (recovery tasks,
    /// checkpointing, scheduling).
    pub fn runtime_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        (self.recovery + self.checkpoint + self.runtime).as_secs_f64() / total
    }

    /// Fraction of time spent idle.
    pub fn idle_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        self.idle.as_secs_f64() / total
    }
}

/// Full report of one resilient solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Policy used.
    pub policy: RecoveryPolicy,
    /// Final iterate.
    pub x: Vec<f64>,
    /// Iterations executed (including re-done iterations after rollbacks and
    /// restarts, i.e. total work performed).
    pub iterations: usize,
    /// Final relative residual (explicitly recomputed).
    pub relative_residual: f64,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// Per-iteration residual history (time-stamped), for Figure 3 traces.
    pub history: ConvergenceHistory,
    /// Recovery events in order.
    pub events: Vec<RecoveryEvent>,
    /// Faults discovered during the run.
    pub faults_discovered: usize,
    /// Pages recovered (any action other than `Ignored`).
    pub pages_recovered: usize,
    /// Number of rollbacks (checkpoint policy only).
    pub rollbacks: usize,
    /// Number of restarts (Lossy Restart policy only).
    pub restarts: usize,
    /// Time bucket accounting.
    pub time: TimeBuckets,
}

impl RunReport {
    /// True if the run converged.
    pub fn converged(&self) -> bool {
        self.stop_reason == StopReason::Converged
    }

    /// Slowdown of this run compared to a reference wall time, in percent
    /// (the y-axis of Figure 4).
    pub fn slowdown_percent(&self, reference: Duration) -> f64 {
        let reference_secs = reference.as_secs_f64();
        if reference_secs <= 0.0 {
            return 0.0;
        }
        (self.elapsed.as_secs_f64() / reference_secs - 1.0) * 100.0
    }
}

/// Harmonic mean of a set of positive values — the aggregation the paper uses
/// to combine per-matrix overheads (Tables 2 and 4-adjacent text).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum_inverse: f64 = values.iter().map(|v| 1.0 / v.max(1e-300)).sum();
    values.len() as f64 / sum_inverse
}

/// Harmonic mean of slowdown factors expressed as percentages: the values are
/// converted to factors (1 + p/100), averaged harmonically and converted back.
pub fn harmonic_mean_slowdown_percent(percents: &[f64]) -> f64 {
    if percents.is_empty() {
        return 0.0;
    }
    let factors: Vec<f64> = percents.iter().map(|p| 1.0 + p / 100.0).collect();
    (harmonic_mean(&factors) - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_bucket_fractions() {
        let t = TimeBuckets {
            compute: Duration::from_millis(80),
            recovery: Duration::from_millis(5),
            checkpoint: Duration::from_millis(5),
            runtime: Duration::from_millis(5),
            idle: Duration::from_millis(5),
        };
        assert_eq!(t.total(), Duration::from_millis(100));
        assert!((t.useful_fraction() - 0.8).abs() < 1e-12);
        assert!((t.runtime_fraction() - 0.15).abs() < 1e-12);
        assert!((t.idle_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_time_fractions_are_zero() {
        let t = TimeBuckets::default();
        assert_eq!(t.useful_fraction(), 0.0);
        assert_eq!(t.runtime_fraction(), 0.0);
    }

    #[test]
    fn harmonic_mean_matches_hand_computation() {
        let values = [1.0, 2.0, 4.0];
        let expected = 3.0 / (1.0 + 0.5 + 0.25);
        assert!((harmonic_mean(&values) - expected).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn harmonic_mean_of_slowdowns() {
        // Equal slowdowns stay unchanged.
        assert!((harmonic_mean_slowdown_percent(&[10.0, 10.0]) - 10.0).abs() < 1e-9);
        // Mixed slowdowns land between min and max, below the arithmetic mean.
        let m = harmonic_mean_slowdown_percent(&[0.0, 100.0]);
        assert!(m > 0.0 && m < 50.0);
    }
}
