//! Run reports: convergence, recovery events, time accounting and the
//! per-rank fault aggregation consumed by distributed campaign runners.

use std::time::Duration;

use feir_pagemem::InjectionReport;
use feir_solvers::history::{ConvergenceHistory, StopReason};
use serde::{Deserialize, Serialize};

use crate::policy::RecoveryPolicy;

/// What a recovery did about one lost page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// Exact forward interpolation (lhs recomputation or rhs block solve).
    ExactInterpolation,
    /// Lossy block-Jacobi interpolation followed by a restart.
    LossyInterpolation,
    /// Rollback to the last checkpoint.
    Rollback,
    /// Blank page accepted as-is (trivial recovery).
    AcceptBlank,
    /// The error could not be recovered (simultaneous related losses) and was
    /// ignored, as in the paper's evaluation ("no fallback is used").
    Ignored,
}

/// One recovery event, for tracing and debugging.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// Solver iteration at which the loss was handled.
    pub iteration: usize,
    /// Name of the affected vector.
    pub vector: String,
    /// Page index within the vector.
    pub page: usize,
    /// What was done.
    pub action: RecoveryAction,
}

/// Wall-time buckets accumulated by the resilient solver, used to reproduce
/// the per-state breakdown of Table 3.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TimeBuckets {
    /// Strip-mined solver computation (SpMV, axpy, dots).
    pub compute: Duration,
    /// Recovery-task work (scanning bitmasks, interpolating, restarting).
    pub recovery: Duration,
    /// Checkpoint writing and rollback reading.
    pub checkpoint: Duration,
    /// Task-creation / scheduling / bookkeeping overhead.
    pub runtime: Duration,
    /// Estimated idle time (imbalance): wall time not attributable to the
    /// other buckets, scaled by the worker count.
    pub idle: Duration,
}

impl TimeBuckets {
    /// Total accounted time.
    pub fn total(&self) -> Duration {
        self.compute + self.recovery + self.checkpoint + self.runtime + self.idle
    }

    /// Fraction of time spent doing useful solver work.
    pub fn useful_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        self.compute.as_secs_f64() / total
    }

    /// Fraction of time spent in runtime-like activities (recovery tasks,
    /// checkpointing, scheduling).
    pub fn runtime_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        (self.recovery + self.checkpoint + self.runtime).as_secs_f64() / total
    }

    /// Fraction of time spent idle.
    pub fn idle_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        self.idle.as_secs_f64() / total
    }
}

/// Full report of one resilient solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Policy used.
    pub policy: RecoveryPolicy,
    /// Final iterate.
    pub x: Vec<f64>,
    /// Iterations executed (including re-done iterations after rollbacks and
    /// restarts, i.e. total work performed).
    pub iterations: usize,
    /// Final relative residual (explicitly recomputed).
    pub relative_residual: f64,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// Per-iteration residual history (time-stamped), for Figure 3 traces.
    pub history: ConvergenceHistory,
    /// Recovery events in order.
    pub events: Vec<RecoveryEvent>,
    /// Faults discovered during the run.
    pub faults_discovered: usize,
    /// Pages recovered (any action other than `Ignored`).
    pub pages_recovered: usize,
    /// Number of rollbacks (checkpoint policy only).
    pub rollbacks: usize,
    /// Number of restarts (Lossy Restart policy only).
    pub restarts: usize,
    /// Time bucket accounting.
    pub time: TimeBuckets,
}

impl RunReport {
    /// True if the run converged.
    pub fn converged(&self) -> bool {
        self.stop_reason == StopReason::Converged
    }

    /// Slowdown of this run compared to a reference wall time, in percent
    /// (the y-axis of Figure 4).
    pub fn slowdown_percent(&self, reference: Duration) -> f64 {
        let reference_secs = reference.as_secs_f64();
        if reference_secs <= 0.0 {
            return 0.0;
        }
        (self.elapsed.as_secs_f64() / reference_secs - 1.0) * 100.0
    }
}

/// Fault accounting of one rank of a distributed resilient solve, combining
/// the injector-side view (attempts) with the registry-side view (effective
/// injections, discoveries, recoveries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankFaultStats {
    /// The rank these counters belong to.
    pub rank: usize,
    /// Injection attempts recorded by this rank's injector stream (including
    /// attempts that hit an already-poisoned page).
    pub attempted: usize,
    /// Injections that landed on a healthy page (effective DUEs).
    pub injected: usize,
    /// Faults discovered by the solver on access (the "SIGBUS" count).
    pub discovered: usize,
    /// Pages marked healthy again in this rank's registry — after an exact
    /// reconstruction *or* a blank acceptance (registries track page health,
    /// not recovery quality; compare with the solve report's
    /// `pages_recovered` / `pages_ignored` split for the latter).
    pub recovered: usize,
}

/// Per-rank [`InjectionReport`]s and registry counters aggregated into one
/// unified fault report for a whole distributed solve.
///
/// On the simulated distributed machine every rank runs its own injector
/// stream against its own registry; this type folds those per-rank views into
/// the single report the campaign runner consumes, while keeping the per-rank
/// attribution (which ranks were hit, how often) that machine-wide totals
/// lose.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributedFaultReport {
    /// Fault statistics per rank, in rank order.
    pub per_rank: Vec<RankFaultStats>,
}

impl DistributedFaultReport {
    /// An empty report covering `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        Self {
            per_rank: (0..ranks)
                .map(|rank| RankFaultStats {
                    rank,
                    ..RankFaultStats::default()
                })
                .collect(),
        }
    }

    /// Folds per-rank injector reports (index-aligned with the ranks) into
    /// the attempt counters.
    pub fn absorb_injection_reports(&mut self, reports: &[InjectionReport]) {
        for (rank, report) in reports.iter().enumerate() {
            if let Some(stats) = self.per_rank.get_mut(rank) {
                stats.attempted += report.records.len();
            }
        }
    }

    /// Records one rank's registry-side counters (effective injections,
    /// discoveries, recoveries).
    pub fn set_registry_counts(
        &mut self,
        rank: usize,
        injected: usize,
        discovered: usize,
        recovered: usize,
    ) {
        let stats = &mut self.per_rank[rank];
        stats.injected = injected;
        stats.discovered = discovered;
        stats.recovered = recovered;
    }

    /// Total injection attempts across every rank.
    pub fn total_attempted(&self) -> usize {
        self.per_rank.iter().map(|s| s.attempted).sum()
    }

    /// Total effective injections across every rank.
    pub fn total_injected(&self) -> usize {
        self.per_rank.iter().map(|s| s.injected).sum()
    }

    /// Total faults discovered across every rank.
    pub fn total_discovered(&self) -> usize {
        self.per_rank.iter().map(|s| s.discovered).sum()
    }

    /// Total pages recovered across every rank.
    pub fn total_recovered(&self) -> usize {
        self.per_rank.iter().map(|s| s.recovered).sum()
    }

    /// Number of ranks that saw at least one effective injection — the
    /// paper's fault-containment unit.
    pub fn faulty_ranks(&self) -> usize {
        self.per_rank.iter().filter(|s| s.injected > 0).count()
    }
}

/// Harmonic mean of a set of positive values — the aggregation the paper uses
/// to combine per-matrix overheads (Tables 2 and 4-adjacent text).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum_inverse: f64 = values.iter().map(|v| 1.0 / v.max(1e-300)).sum();
    values.len() as f64 / sum_inverse
}

/// Harmonic mean of slowdown factors expressed as percentages: the values are
/// converted to factors (1 + p/100), averaged harmonically and converted back.
pub fn harmonic_mean_slowdown_percent(percents: &[f64]) -> f64 {
    if percents.is_empty() {
        return 0.0;
    }
    let factors: Vec<f64> = percents.iter().map(|p| 1.0 + p / 100.0).collect();
    (harmonic_mean(&factors) - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_bucket_fractions() {
        let t = TimeBuckets {
            compute: Duration::from_millis(80),
            recovery: Duration::from_millis(5),
            checkpoint: Duration::from_millis(5),
            runtime: Duration::from_millis(5),
            idle: Duration::from_millis(5),
        };
        assert_eq!(t.total(), Duration::from_millis(100));
        assert!((t.useful_fraction() - 0.8).abs() < 1e-12);
        assert!((t.runtime_fraction() - 0.15).abs() < 1e-12);
        assert!((t.idle_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_time_fractions_are_zero() {
        let t = TimeBuckets::default();
        assert_eq!(t.useful_fraction(), 0.0);
        assert_eq!(t.runtime_fraction(), 0.0);
    }

    #[test]
    fn harmonic_mean_matches_hand_computation() {
        let values = [1.0, 2.0, 4.0];
        let expected = 3.0 / (1.0 + 0.5 + 0.25);
        assert!((harmonic_mean(&values) - expected).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn distributed_fault_report_aggregates_per_rank_views() {
        use feir_pagemem::{InjectionRecord, VectorId};

        let mut report = DistributedFaultReport::new(3);
        // Rank 1's injector attempted two errors, rank 2's attempted one.
        let mk = |n: usize| InjectionReport {
            records: (0..n)
                .map(|i| InjectionRecord {
                    at: Duration::from_millis(i as u64),
                    vector: VectorId(0),
                    page: i,
                    effective: true,
                })
                .collect(),
        };
        report.absorb_injection_reports(&[mk(0), mk(2), mk(1)]);
        report.set_registry_counts(1, 2, 2, 2);
        report.set_registry_counts(2, 1, 1, 0);

        assert_eq!(report.total_attempted(), 3);
        assert_eq!(report.total_injected(), 3);
        assert_eq!(report.total_discovered(), 3);
        assert_eq!(report.total_recovered(), 2);
        assert_eq!(report.faulty_ranks(), 2);
        assert_eq!(report.per_rank[0], RankFaultStats::default());
        assert_eq!(report.per_rank[1].rank, 1);
        assert_eq!(report.per_rank[1].attempted, 2);
    }

    #[test]
    fn harmonic_mean_of_slowdowns() {
        // Equal slowdowns stay unchanged.
        assert!((harmonic_mean_slowdown_percent(&[10.0, 10.0]) - 10.0).abs() < 1e-9);
        // Mixed slowdowns land between min and max, below the arithmetic mean.
        let m = harmonic_mean_slowdown_percent(&[0.0, 100.0]);
        assert!(m > 0.0 && m < 50.0);
    }
}
