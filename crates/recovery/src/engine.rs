//! The solver-agnostic **resilient iteration engine**.
//!
//! The paper's central observation (Sections 2–3, 5) is that exact forward
//! recovery is a property of the *algebraic relations between an iteration's
//! protected vectors*, not of one particular solver: the same reconstruction
//! machinery applies to CG and to preconditioned CG, and (Table 1) to
//! BiCGStab and GMRES. This module is that observation as code. It owns the
//! pieces every resilient solver shares —
//!
//! * the [`RecoverableIteration`] trait describing one solver's algebraic
//!   relations per protected vector (how an iterate, residual, direction,
//!   matvec-product or preconditioned-residual page is reconstructed from
//!   the surviving state);
//! * the coupled-row **page-reconstruction kernels**
//!   ([`recover_iterate_rows`], [`recover_direction_rows`],
//!   [`lossy_interpolate_rows`]) generalising the shared-memory
//!   [`BlockRecovery`](crate::BlockRecovery) solves to arbitrary
//!   simultaneous row sets;
//! * **scrub-point fault materialisation** ([`scrub_blank`], [`mark_page`])
//!   — the page-granular analogue of SIGBUS-on-touch — and the related-data
//!   partitioning of simultaneous losses ([`split_related`]);
//! * **AFEIR overlap scheduling** ([`overlap`]): the same recovery closure
//!   runs either in the critical path (FEIR, Figure 2(a)) or beside
//!   neighbouring solver work on the work-stealing pool (AFEIR,
//!   Figure 2(b));
//! * the read-only **recovery planning** types ([`StatePlan`],
//!   [`plan_state_fixes`], [`RecoveryPlan`]) that let reconstruction run
//!   concurrently with a reduction without aliasing the pages being reduced
//!   over.
//!
//! Both resilient solvers instantiate this layer: the shared-memory
//! [`ResilientCg`](crate::ResilientCg) consumes the plan/overlap machinery
//! directly, and `feir-dist`'s per-rank loop is generic over
//! [`RecoverableIteration`] — plain CG is [`CgRelations`], block-Jacobi PCG
//! is [`PcgRelations`], and every future solver variant is another ~100-line
//! trait implementation instead of another monolithic solver copy.

use std::ops::Range;

use feir_pagemem::{AccessOutcome, PageRegistry, VectorId};
use feir_sparse::blocking::BlockPartition;
use feir_sparse::{CsrMatrix, DenseMatrix, LocalBlockJacobi};

use crate::report::{RecoveryAction, RecoveryEvent};

// ----- the solver-relation trait -------------------------------------------

/// The algebraic relations of one solver's iteration, per protected vector.
///
/// An implementation answers exactly one question for each protected vector:
/// *given the surviving state, how is a lost set of rows reconstructed
/// exactly?* The engine (and the per-rank distributed loop built on it)
/// handles everything else — scrub points, related-data conflicts, policy
/// dispatch, AFEIR overlap, cross-rank fetches — so a new solver variant
/// only describes its relations:
///
/// * **iterate** `x`: solve `A_RR x_R = b_R − g_R − Σ_{c∉R} A_Rc x_c`
///   over the lost rows `R` ([`RecoverableIteration::reconstruct_iterate`]);
/// * **direction** `d(t−1)`: solve `A_RR d_R = q_R − Σ_{c∉R} A_Rc d_c`
///   against the *retained* snapshot of `d` that produced `q`
///   ([`RecoverableIteration::reconstruct_direction`]);
/// * **residual** `g`: recompute `g_R = b_R − Σ_c A_Rc x_c` from the
///   repaired iterate ([`RecoverableIteration::residual_rows`]);
/// * **preconditioned residual** `z` (PCG only): re-solve the rank-local
///   coupled system `M_pp z_p = g_p` with the preconditioner's factorized
///   diagonal block ([`RecoverableIteration::reapply_preconditioner`]);
/// * the **Lossy Restart** interpolation drops the residual term
///   ([`RecoverableIteration::lossy_iterate_rows`], Theorems 1–3).
///
/// All row indices are global; callers working on a rank-local page space
/// offset them first (see [`plan_state_fixes`]).
pub trait RecoverableIteration: Sync {
    /// Short solver name for reports and tables (e.g. `"cg"`, `"pcg"`).
    fn solver_name(&self) -> &'static str;

    /// True when the iteration carries a preconditioned residual `z` whose
    /// pages are protected in addition to `x`, `g`, `d`, `q`.
    fn preconditioned(&self) -> bool {
        false
    }

    /// Exact reconstruction of the lost (sorted, global) `rows` of the
    /// iterate from the residual at those rows and the surviving iterate
    /// view; `None` when the coupled system is unsolvable (the paper
    /// "simply ignores" those losses).
    fn reconstruct_iterate(
        &self,
        rows: &[usize],
        g_at_rows: &[f64],
        x_view: &[f64],
    ) -> Option<Vec<f64>>;

    /// Exact reconstruction of the lost `rows` of the search direction from
    /// the retained matvec product `q = A·d` and the retained view of `d`
    /// (the values that produced `q`, *not* freshly fetched ones).
    fn reconstruct_direction(
        &self,
        rows: &[usize],
        q_at_rows: &[f64],
        d_view: &[f64],
    ) -> Option<Vec<f64>>;

    /// Recomputes the residual over `rows` from a repaired iterate view:
    /// `out[k] = b[rows.start + k] − Σ_c A_{rows.start+k,c} x_view[c]`.
    fn residual_rows(&self, rows: Range<usize>, x_view: &[f64], out: &mut [f64]);

    /// Lossy (residual-free) interpolation of lost iterate rows — the
    /// distributed form of the Lossy Restart step.
    fn lossy_iterate_rows(&self, rows: &[usize], x_view: &[f64]) -> Option<Vec<f64>>;

    /// Re-solves the preconditioner's coupled block system `M_pp z_p = g_p`
    /// for one local page, writing the reconstructed preconditioned
    /// residual; returns `false` for solvers without a `z` vector.
    fn reapply_preconditioner(&self, page: usize, g_page: &[f64], z_page: &mut [f64]) -> bool {
        let _ = (page, g_page, z_page);
        false
    }
}

/// The algebraic relations of plain CG (Listing 1): protected vectors
/// `x, g, d, q` tied together by `g = b − A·x` and `q = A·d`.
#[derive(Debug, Clone, Copy)]
pub struct CgRelations<'a> {
    a: &'a CsrMatrix,
    b: &'a [f64],
}

impl<'a> CgRelations<'a> {
    /// Binds the relations to one linear system.
    ///
    /// # Panics
    /// Panics if the matrix is not square or `b` has the wrong length.
    pub fn new(a: &'a CsrMatrix, b: &'a [f64]) -> Self {
        assert_eq!(
            a.rows(),
            a.cols(),
            "recovery relations need a square matrix"
        );
        assert_eq!(a.rows(), b.len(), "rhs length mismatch");
        Self { a, b }
    }

    /// The bound operator.
    pub fn matrix(&self) -> &'a CsrMatrix {
        self.a
    }

    /// The bound right-hand side.
    pub fn rhs(&self) -> &'a [f64] {
        self.b
    }
}

impl RecoverableIteration for CgRelations<'_> {
    fn solver_name(&self) -> &'static str {
        "cg"
    }

    fn reconstruct_iterate(
        &self,
        rows: &[usize],
        g_at_rows: &[f64],
        x_view: &[f64],
    ) -> Option<Vec<f64>> {
        recover_iterate_rows(self.a, self.b, g_at_rows, rows, x_view)
    }

    fn reconstruct_direction(
        &self,
        rows: &[usize],
        q_at_rows: &[f64],
        d_view: &[f64],
    ) -> Option<Vec<f64>> {
        recover_direction_rows(self.a, q_at_rows, rows, d_view)
    }

    fn residual_rows(&self, rows: Range<usize>, x_view: &[f64], out: &mut [f64]) {
        // Recovery matvec over a page-sized row block: routed through the
        // format backend so a forced SELL run stays SELL end to end (under
        // `auto` the analyzer's row floor keeps blocks this small on CSR).
        feir_sparse::SpmvBackend::select_rows(self.a, rows.clone()).spmv(self.a, x_view, out);
        for (k, r) in rows.enumerate() {
            out[k] = self.b[r] - out[k];
        }
    }

    fn lossy_iterate_rows(&self, rows: &[usize], x_view: &[f64]) -> Option<Vec<f64>> {
        lossy_interpolate_rows(self.a, self.b, rows, x_view)
    }
}

/// The algebraic relations of block-Jacobi PCG (Listing 5): everything CG
/// has, plus the preconditioned residual `z` solved per page from
/// `M_pp z_p = g_p` — whose factorization the recovery reuses, which is
/// exactly why the paper picks page-sized Jacobi blocks (Section 5.1).
#[derive(Debug, Clone, Copy)]
pub struct PcgRelations<'a> {
    cg: CgRelations<'a>,
    jacobi: &'a LocalBlockJacobi,
}

impl<'a> PcgRelations<'a> {
    /// Binds the CG relations plus a (rank-)local block-Jacobi
    /// preconditioner.
    pub fn new(a: &'a CsrMatrix, b: &'a [f64], jacobi: &'a LocalBlockJacobi) -> Self {
        Self {
            cg: CgRelations::new(a, b),
            jacobi,
        }
    }

    /// The bound preconditioner.
    pub fn preconditioner(&self) -> &'a LocalBlockJacobi {
        self.jacobi
    }
}

impl RecoverableIteration for PcgRelations<'_> {
    fn solver_name(&self) -> &'static str {
        "pcg"
    }

    fn preconditioned(&self) -> bool {
        true
    }

    fn reconstruct_iterate(
        &self,
        rows: &[usize],
        g_at_rows: &[f64],
        x_view: &[f64],
    ) -> Option<Vec<f64>> {
        self.cg.reconstruct_iterate(rows, g_at_rows, x_view)
    }

    fn reconstruct_direction(
        &self,
        rows: &[usize],
        q_at_rows: &[f64],
        d_view: &[f64],
    ) -> Option<Vec<f64>> {
        self.cg.reconstruct_direction(rows, q_at_rows, d_view)
    }

    fn residual_rows(&self, rows: Range<usize>, x_view: &[f64], out: &mut [f64]) {
        self.cg.residual_rows(rows, x_view, out);
    }

    fn lossy_iterate_rows(&self, rows: &[usize], x_view: &[f64]) -> Option<Vec<f64>> {
        self.cg.lossy_iterate_rows(rows, x_view)
    }

    fn reapply_preconditioner(&self, page: usize, g_page: &[f64], z_page: &mut [f64]) -> bool {
        self.jacobi.apply_block(page, g_page, z_page);
        true
    }
}

/// The algebraic relations of **merged-reduction** (pipelined
/// Chronopoulos–Gear) CG.
///
/// The merged iteration renames the protected vectors — the recurrence
/// residual is `r`, the direction `p`, its matvec image `s = A·p` — but the
/// *relations between them are exactly CG's*: `r = b − A·x` recovers lost
/// iterate and residual pages, and `s = A·p` recovers directions, so this is
/// a delegating wrapper whose only job is to give the engine the merged
/// solver's identity. The merged iteration's *companion* vectors (`w = A·r`
/// and the `z = A·s` recurrence helper) are deliberately **not** protected:
/// each is a pure function of a protected vector and is recomputable from it
/// on demand, so protecting them would spend scrub traffic on redundant
/// state.
#[derive(Debug, Clone, Copy)]
pub struct MergedCgRelations<'a> {
    cg: CgRelations<'a>,
}

impl<'a> MergedCgRelations<'a> {
    /// Binds the relations to one linear system (see [`CgRelations::new`]).
    pub fn new(a: &'a CsrMatrix, b: &'a [f64]) -> Self {
        Self {
            cg: CgRelations::new(a, b),
        }
    }
}

impl RecoverableIteration for MergedCgRelations<'_> {
    fn solver_name(&self) -> &'static str {
        "cg_merged"
    }

    fn reconstruct_iterate(
        &self,
        rows: &[usize],
        g_at_rows: &[f64],
        x_view: &[f64],
    ) -> Option<Vec<f64>> {
        self.cg.reconstruct_iterate(rows, g_at_rows, x_view)
    }

    fn reconstruct_direction(
        &self,
        rows: &[usize],
        q_at_rows: &[f64],
        d_view: &[f64],
    ) -> Option<Vec<f64>> {
        self.cg.reconstruct_direction(rows, q_at_rows, d_view)
    }

    fn residual_rows(&self, rows: Range<usize>, x_view: &[f64], out: &mut [f64]) {
        self.cg.residual_rows(rows, x_view, out);
    }

    fn lossy_iterate_rows(&self, rows: &[usize], x_view: &[f64]) -> Option<Vec<f64>> {
        self.cg.lossy_iterate_rows(rows, x_view)
    }
}

/// The algebraic relations of merged-reduction block-Jacobi PCG: everything
/// [`MergedCgRelations`] has, plus the preconditioned residual `u = M⁻¹·r`
/// re-solved per page from the factorized diagonal block (the same relation
/// classic PCG uses for `z`). The merged iteration's `q = M⁻¹·s` and
/// `z = A·q` companions stay unprotected for the same reason as `w`.
#[derive(Debug, Clone, Copy)]
pub struct MergedPcgRelations<'a> {
    pcg: PcgRelations<'a>,
}

impl<'a> MergedPcgRelations<'a> {
    /// Binds the CG relations plus a (rank-)local block-Jacobi
    /// preconditioner (see [`PcgRelations::new`]).
    pub fn new(a: &'a CsrMatrix, b: &'a [f64], jacobi: &'a LocalBlockJacobi) -> Self {
        Self {
            pcg: PcgRelations::new(a, b, jacobi),
        }
    }
}

impl RecoverableIteration for MergedPcgRelations<'_> {
    fn solver_name(&self) -> &'static str {
        "pcg_merged"
    }

    fn preconditioned(&self) -> bool {
        true
    }

    fn reconstruct_iterate(
        &self,
        rows: &[usize],
        g_at_rows: &[f64],
        x_view: &[f64],
    ) -> Option<Vec<f64>> {
        self.pcg.reconstruct_iterate(rows, g_at_rows, x_view)
    }

    fn reconstruct_direction(
        &self,
        rows: &[usize],
        q_at_rows: &[f64],
        d_view: &[f64],
    ) -> Option<Vec<f64>> {
        self.pcg.reconstruct_direction(rows, q_at_rows, d_view)
    }

    fn residual_rows(&self, rows: Range<usize>, x_view: &[f64], out: &mut [f64]) {
        self.pcg.residual_rows(rows, x_view, out);
    }

    fn lossy_iterate_rows(&self, rows: &[usize], x_view: &[f64]) -> Option<Vec<f64>> {
        self.pcg.lossy_iterate_rows(rows, x_view)
    }

    fn reapply_preconditioner(&self, page: usize, g_page: &[f64], z_page: &mut [f64]) -> bool {
        self.pcg.reapply_preconditioner(page, g_page, z_page)
    }
}

// ----- coupled-row page-reconstruction kernels -----------------------------

/// Solves the coupled dense system `A_RR · y = rhs` over the given sorted
/// global rows (a principal submatrix of the SPD operator, hence Cholesky).
fn solve_coupled(a: &CsrMatrix, rows: &[usize], rhs: &[f64]) -> Option<Vec<f64>> {
    debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows must be sorted");
    let k = rows.len();
    let mut m = DenseMatrix::zeros(k, k);
    for (i, &r) in rows.iter().enumerate() {
        let (cols, vals) = a.row(r);
        for (c, v) in cols.iter().zip(vals) {
            if let Ok(j) = rows.binary_search(c) {
                m.set(i, j, *v);
            }
        }
    }
    m.cholesky().ok().map(|chol| chol.solve(rhs))
}

/// Exact recovery of lost rows of the **iterate**: solves
/// `A_RR x_R = b_R − g_R − Σ_{c∉R} A_Rc x_c` over the sorted global rows `R`.
///
/// `g_at_rows[i]` is the residual at `rows[i]`; `x_full` must hold valid data
/// at every stencil column outside `rows` — on a distributed machine the
/// remote columns are fetched through the recovery request/reply round
/// first. The result matches the shared-memory
/// [`BlockRecovery::recover_iterate_rhs`](crate::BlockRecovery::recover_iterate_rhs)
/// to round-off (and generalises it to arbitrary simultaneous row sets).
pub fn recover_iterate_rows(
    a: &CsrMatrix,
    b: &[f64],
    g_at_rows: &[f64],
    rows: &[usize],
    x_full: &[f64],
) -> Option<Vec<f64>> {
    debug_assert_eq!(g_at_rows.len(), rows.len());
    let _probe = feir_trace::span(feir_trace::Phase::RecoveryReconstruct);
    let rhs: Vec<f64> = rows
        .iter()
        .zip(g_at_rows)
        .map(|(&r, g_r)| {
            let (cols, vals) = a.row(r);
            let mut acc = b[r] - g_r;
            for (c, v) in cols.iter().zip(vals) {
                if rows.binary_search(c).is_err() {
                    acc -= v * x_full[*c];
                }
            }
            acc
        })
        .collect();
    solve_coupled(a, rows, &rhs)
}

/// Exact recovery of lost rows of the **search direction**: solves
/// `A_RR d_R = q_R − Σ_{c∉R} A_Rc d_c` over the sorted global rows `R`.
///
/// `q_at_rows[i]` is the matvec product at `rows[i]`; `d_full` must hold the
/// direction that produced `q` at every stencil column outside `rows` — the
/// recovering rank's retained halo snapshot, not freshly fetched values (a
/// neighbour may already have advanced its direction).
pub fn recover_direction_rows(
    a: &CsrMatrix,
    q_at_rows: &[f64],
    rows: &[usize],
    d_full: &[f64],
) -> Option<Vec<f64>> {
    debug_assert_eq!(q_at_rows.len(), rows.len());
    let _probe = feir_trace::span(feir_trace::Phase::RecoveryReconstruct);
    let rhs: Vec<f64> = rows
        .iter()
        .zip(q_at_rows)
        .map(|(&r, q_r)| {
            let (cols, vals) = a.row(r);
            let mut acc = *q_r;
            for (c, v) in cols.iter().zip(vals) {
                if rows.binary_search(c).is_err() {
                    acc -= v * d_full[*c];
                }
            }
            acc
        })
        .collect();
    solve_coupled(a, rows, &rhs)
}

/// Lossy interpolation of lost rows of the iterate (no residual term):
/// `A_RR x_R = b_R − Σ_{c∉R} A_Rc x_c`, the block-Jacobi step of the paper's
/// Lossy Restart interpolation (Theorems 1–3).
pub fn lossy_interpolate_rows(
    a: &CsrMatrix,
    b: &[f64],
    rows: &[usize],
    x_full: &[f64],
) -> Option<Vec<f64>> {
    let _probe = feir_trace::span(feir_trace::Phase::RecoveryReconstruct);
    let rhs: Vec<f64> = rows
        .iter()
        .map(|&r| {
            let (cols, vals) = a.row(r);
            let mut acc = b[r];
            for (c, v) in cols.iter().zip(vals) {
                if rows.binary_search(c).is_err() {
                    acc -= v * x_full[*c];
                }
            }
            acc
        })
        .collect();
    solve_coupled(a, rows, &rhs)
}

// ----- scrub-point fault materialisation -----------------------------------

/// Touches every page of a protected vector at a scrub point; lost pages are
/// blanked (the fresh `mmap` of the paper's signal handler) and returned.
pub fn scrub_blank(
    registry: &PageRegistry,
    id: VectorId,
    pages: &BlockPartition,
    data: &mut [f64],
) -> Vec<usize> {
    let mut lost = Vec::new();
    for p in 0..pages.num_blocks() {
        match registry.on_access(id, p) {
            AccessOutcome::Ok => {}
            AccessOutcome::FaultDiscovered | AccessOutcome::AlreadyLost => {
                for v in &mut data[pages.range(p)] {
                    *v = 0.0;
                }
                lost.push(p);
            }
        }
    }
    lost
}

/// Marks a page healthy again after its data has been reconstructed (or
/// blank-accepted).
pub fn mark_page(registry: &PageRegistry, id: VectorId, page: usize) {
    let _ = registry.on_access(id, page);
    registry.mark_recovered(id, page);
}

/// Partitions two vectors' simultaneous page losses into the pages
/// recoverable on each side and the *related-data* conflicts (pages lost in
/// both, which no relation can reconstruct — the paper "simply ignores"
/// them). Returns `(recoverable_a, recoverable_b, conflicted)`.
pub fn split_related(lost_a: &[usize], lost_b: &[usize]) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let conflicted: Vec<usize> = lost_a
        .iter()
        .copied()
        .filter(|p| lost_b.contains(p))
        .collect();
    let rec_a = lost_a
        .iter()
        .copied()
        .filter(|p| !conflicted.contains(p))
        .collect();
    let rec_b = lost_b
        .iter()
        .copied()
        .filter(|p| !conflicted.contains(p))
        .collect();
    (rec_a, rec_b, conflicted)
}

// ----- AFEIR overlap scheduling --------------------------------------------

/// Runs a recovery closure either in the critical path (FEIR: `recover`
/// first, then `work`) or overlapped with the neighbouring solver work on
/// the work-stealing pool (AFEIR: `rayon::join`). The closures must not
/// alias mutable state — recovery *plans* into side buffers and the caller
/// installs afterwards, which is the engine's equivalent of the paper's
/// communication through atomic bitmasks rather than task dependences.
pub fn overlap<A, B, RA, RB>(asynchronous: bool, recover: A, work: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if asynchronous {
        rayon::join(recover, work)
    } else {
        let ra = recover();
        let rb = work();
        (ra, rb)
    }
}

// ----- read-only recovery planning -----------------------------------------

/// Reconstructions planned for lost iterate/residual pages, computed from a
/// read-only snapshot so AFEIR can overlap the planning with the ε reduction
/// and the installation with the reduction *wait* (split-phase allreduce).
#[derive(Debug, Default)]
pub struct StatePlan {
    /// Local iterate pages the coupled solve covered.
    pub x_pages: Vec<usize>,
    /// Global rows of the coupled exact solve over `x_pages`.
    pub x_rows: Vec<usize>,
    /// The reconstructed iterate values for `x_rows` (`None` when the
    /// coupled system was unsolvable).
    pub x_values: Option<Vec<f64>>,
    /// Local iterate pages abandoned because their stencil depends on
    /// known-blank entries (related losses, locally or across ranks).
    pub x_ignored: Vec<usize>,
    /// Recomputed residual pages `(local page, values)`.
    pub g_fixes: Vec<(usize, Vec<f64>)>,
    /// Local residual pages abandoned because their recomputation would
    /// read blank iterate data.
    pub g_ignored: Vec<usize>,
    /// Local iterate pages already reconstructed by the cross-rank coupled
    /// exchange before planning; the plan leaves their (installed) values
    /// alone and residual recomputation may read them.
    pub cross_rank: Vec<usize>,
}

/// One scrub point's iterate/residual losses, as input to
/// [`plan_state_fixes`].
#[derive(Debug, Clone, Copy)]
pub struct StateLosses<'a> {
    /// Lost iterate pages with a surviving residual (related-loss conflicts
    /// already excluded, e.g. via [`split_related`]).
    pub rec_x: &'a [usize],
    /// Lost residual pages with a surviving iterate.
    pub rec_g: &'a [usize],
    /// Sorted global iterate entries known to hold blank garbage that no
    /// relation can repair this round: the rows of related-loss pages (`x`
    /// and `g` lost together) plus remote entries whose owning rank flagged
    /// them invalid in the recovery exchange. Pages whose relation reaches
    /// into this set are *abandoned* (blank-accepted) instead of being
    /// reconstructed from garbage and reported as exact — the cross-rank
    /// form of the paper's "related data" case.
    pub blank_x: &'a [usize],
    /// Sorted local pages (a subset of `rec_x`) the cross-rank coupled
    /// exchange already reconstructed and installed into the iterate view;
    /// planning must neither re-solve nor abandon them.
    pub cross_rank: &'a [usize],
}

/// Plans the exact recovery of the lost iterate/residual pages in `losses`
/// from the patched snapshot; never mutates solver state. `pages` partitions
/// the local slice `g`, whose global rows start at `row_offset`; `x_full` is
/// the full-length (halo-patched) iterate view and `stencil` the operator
/// whose rows decide which entries each reconstruction reads.
pub fn plan_state_fixes<S: RecoverableIteration + ?Sized>(
    relations: &S,
    stencil: &CsrMatrix,
    pages: &BlockPartition,
    row_offset: usize,
    losses: StateLosses<'_>,
    g: &[f64],
    x_full: &[f64],
) -> StatePlan {
    let _probe = feir_trace::span(feir_trace::Phase::RecoveryPlan);
    let StateLosses {
        rec_x,
        rec_g,
        blank_x,
        cross_rank,
    } = losses;
    debug_assert!(blank_x.windows(2).all(|w| w[0] < w[1]), "blank_x sorted");
    debug_assert!(
        cross_rank.windows(2).all(|w| w[0] < w[1]),
        "cross_rank sorted"
    );
    let page_rows = |p: usize| {
        let local = pages.range(p);
        row_offset + local.start..row_offset + local.end
    };
    let touches_blank = |p: usize, blanks: &[usize]| {
        page_rows(p).any(|r| {
            let (cols, _) = stencil.row(r);
            cols.iter().any(|c| blanks.binary_search(c).is_ok())
        })
    };
    // Iterate pages whose stencil reads known-blank entries cannot be
    // reconstructed exactly; the rest go into one coupled solve. The taint
    // is transitive — an abandoned page's own rows stay blank, poisoning
    // any neighbour page whose stencil reads them — so the partition runs
    // to a fixpoint before anything is solved.
    // Pages the coupled cross-rank exchange already repaired hold exact,
    // installed values in `x_full`: they leave the local partition entirely
    // and simply count as healthy stencil input for everything below.
    let cross_handled: Vec<usize> = rec_x
        .iter()
        .copied()
        .filter(|p| cross_rank.binary_search(p).is_ok())
        .collect();
    let mut blanks: Vec<usize> = blank_x.to_vec();
    let mut x_pages: Vec<usize> = rec_x
        .iter()
        .copied()
        .filter(|p| cross_rank.binary_search(p).is_err())
        .collect();
    let mut x_ignored: Vec<usize> = Vec::new();
    loop {
        let (keep, dropped): (Vec<usize>, Vec<usize>) =
            x_pages.iter().partition(|&&p| !touches_blank(p, &blanks));
        x_pages = keep;
        if dropped.is_empty() {
            break;
        }
        blanks.extend(dropped.iter().flat_map(|&p| page_rows(p)));
        blanks.sort_unstable();
        blanks.dedup();
        x_ignored.extend(dropped);
    }
    x_ignored.sort_unstable();
    let x_rows: Vec<usize> = x_pages.iter().flat_map(|&p| page_rows(p)).collect();
    let g_at_rows: Vec<f64> = x_pages
        .iter()
        .flat_map(|&p| pages.range(p))
        .map(|i| g[i])
        .collect();
    let x_values = if x_rows.is_empty() {
        None
    } else {
        relations.reconstruct_iterate(&x_rows, &g_at_rows, x_full)
    };
    // Recompute lost residual pages from the repaired iterate:
    // g_R = b_R − Σ_c A_Rc x_c — but only where every iterate entry the
    // stencil reads is trustworthy (repaired, surviving, or validly
    // fetched). `blanks` already carries the abandoned pages' rows.
    let mut x_view = x_full.to_vec();
    if let Some(values) = &x_values {
        for (&r, v) in x_rows.iter().zip(values) {
            x_view[r] = *v;
        }
    }
    let mut blank_for_g = blanks;
    if x_values.is_none() {
        blank_for_g.extend(x_rows.iter().copied());
        blank_for_g.sort_unstable();
        blank_for_g.dedup();
    }
    let mut g_fixes = Vec::with_capacity(rec_g.len());
    let mut g_ignored = Vec::new();
    for &p in rec_g {
        if touches_blank(p, &blank_for_g) {
            g_ignored.push(p);
            continue;
        }
        let rows = page_rows(p);
        let mut out = vec![0.0; rows.len()];
        relations.residual_rows(rows, &x_view, &mut out);
        g_fixes.push((p, out));
    }
    StatePlan {
        x_pages,
        x_rows,
        x_values,
        x_ignored,
        g_fixes,
        g_ignored,
        cross_rank: cross_handled,
    }
}

/// The subset of one rank's recoverable pages whose exact reconstruction is
/// coupled *across a rank boundary*: their stencil reads remote entries the
/// owning rank flagged invalid, so no purely local solve can repair them.
/// [`cross_rank_candidates`] computes it; the distributed coupled-recovery
/// exchange consumes it.
#[derive(Debug, Default, Clone)]
pub struct CrossRankPartition {
    /// Sorted local page ids in the cross-rank coupled set.
    pub pages: Vec<usize>,
    /// Sorted global rows covered by `pages`.
    pub rows: Vec<usize>,
}

impl CrossRankPartition {
    /// True when no page needs the cross-rank exchange.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

/// Partitions the recoverable pages `rec` into the cross-rank coupled set:
/// the transitive closure, under stencil adjacency within `rec`, of the
/// pages whose stencil touches an `invalid` remote entry (sorted global
/// indices a neighbouring rank reported blank). Because the operator is
/// symmetric, any page another rank's coupled union demands from this rank
/// also touches one of that rank's invalid rows, so both sides compute
/// consistent candidate sets from their own loss views.
pub fn cross_rank_candidates(
    stencil: &CsrMatrix,
    pages: &BlockPartition,
    row_offset: usize,
    rec: &[usize],
    invalid: &[usize],
) -> CrossRankPartition {
    if rec.is_empty() || invalid.is_empty() {
        return CrossRankPartition::default();
    }
    debug_assert!(invalid.windows(2).all(|w| w[0] < w[1]), "invalid sorted");
    let page_rows = |p: usize| {
        let local = pages.range(p);
        row_offset + local.start..row_offset + local.end
    };
    let touches = |p: usize, set: &[usize]| {
        page_rows(p).any(|r| {
            let (cols, _) = stencil.row(r);
            cols.iter().any(|c| set.binary_search(c).is_ok())
        })
    };
    let (mut selected, mut remaining): (Vec<usize>, Vec<usize>) =
        rec.iter().partition(|&&p| touches(p, invalid));
    if selected.is_empty() {
        return CrossRankPartition::default();
    }
    loop {
        let mut sel_rows: Vec<usize> = selected.iter().flat_map(|&p| page_rows(p)).collect();
        sel_rows.sort_unstable();
        let (more, rest): (Vec<usize>, Vec<usize>) =
            remaining.iter().partition(|&&p| touches(p, &sel_rows));
        if more.is_empty() {
            break;
        }
        selected.extend(more);
        remaining = rest;
    }
    selected.sort_unstable();
    let mut rows: Vec<usize> = selected.iter().flat_map(|&p| page_rows(p)).collect();
    rows.sort_unstable();
    CrossRankPartition {
        pages: selected,
        rows,
    }
}

/// Planned page reconstructions produced by a recovery task. The plan is
/// computed from read-only state and applied afterwards so that the AFEIR
/// overlap never aliases the pages being reduced over.
#[derive(Debug, Default)]
pub struct RecoveryPlan {
    /// Pages with reconstructed data: `(vector, skip bit, page, values)`.
    pub(crate) fixes: Vec<(VectorId, u32, usize, Vec<f64>)>,
    /// Pages that could not be recovered (blank-accepted, "ignored").
    pub(crate) abandoned: Vec<(VectorId, u32, usize)>,
    /// Recovery events for the report.
    pub(crate) events: Vec<RecoveryEvent>,
}

impl RecoveryPlan {
    /// Records a reconstructed page.
    pub fn fix(&mut self, id: VectorId, bit: u32, page: usize, values: Vec<f64>) {
        self.fixes.push((id, bit, page, values));
    }

    /// Records a page the engine gives up on (blank-accepted).
    pub fn give_up(&mut self, id: VectorId, bit: u32, page: usize) {
        self.abandoned.push((id, bit, page));
    }

    /// Records a recovery event for the run report.
    pub fn push(&mut self, iteration: usize, vector: &str, page: usize, action: RecoveryAction) {
        self.events.push(RecoveryEvent {
            iteration,
            vector: vector.to_string(),
            page,
            action,
        });
    }

    /// Pages of `id` the plan abandoned.
    pub fn abandoned_pages(&self, id: VectorId) -> Vec<usize> {
        self.abandoned
            .iter()
            .filter(|(aid, _, _)| *aid == id)
            .map(|(_, _, p)| *p)
            .collect()
    }
}

/// For each output page of the row-blocked SpMV, the set of input pages its
/// rows reference (used to decide whether a matvec page can be produced when
/// some direction pages are lost).
pub fn compute_touched_pages(a: &CsrMatrix, partition: BlockPartition) -> Vec<Vec<usize>> {
    let mut touched = Vec::with_capacity(partition.num_blocks());
    for (_, range) in partition.iter() {
        let mut pages: Vec<usize> = Vec::new();
        for r in range {
            let (cols, _) = a.row(r);
            for c in cols {
                let p = partition.block_of(*c);
                if !pages.contains(&p) {
                    pages.push(p);
                }
            }
        }
        pages.sort_unstable();
        touched.push(pages);
    }
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_sparse::generators::{manufactured_rhs, poisson_2d};

    #[test]
    fn cg_relations_reconstruct_iterate_rows_exactly() {
        let a = poisson_2d(12);
        let n = a.rows();
        let (x_true, b) = manufactured_rhs(&a, 5);
        // Consistent (x, g) pair away from the solution.
        let x: Vec<f64> = x_true.iter().map(|v| 0.9 * v + 0.02).collect();
        let mut g = vec![0.0; n];
        a.spmv(&x, &mut g);
        for (gi, bi) in g.iter_mut().zip(&b) {
            *gi = bi - *gi;
        }
        let relations = CgRelations::new(&a, &b);
        let rows: Vec<usize> = (24..48).collect();
        let g_at_rows: Vec<f64> = rows.iter().map(|&r| g[r]).collect();
        let mut damaged = x.clone();
        for &r in &rows {
            damaged[r] = 0.0;
        }
        let recovered = relations
            .reconstruct_iterate(&rows, &g_at_rows, &damaged)
            .expect("coupled solve failed");
        for (k, &r) in rows.iter().enumerate() {
            assert!((recovered[k] - x[r]).abs() < 1e-8, "row {r}");
        }
    }

    #[test]
    fn pcg_relations_reapply_the_preconditioner_block() {
        let a = poisson_2d(8);
        let n = a.rows();
        let (_, b) = manufactured_rhs(&a, 2);
        let jacobi = LocalBlockJacobi::new(&a, 0..n, 16, true).unwrap();
        let relations = PcgRelations::new(&a, &b, &jacobi);
        assert!(relations.preconditioned());
        assert_eq!(relations.solver_name(), "pcg");
        let g: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut z_full = vec![0.0; n];
        jacobi.apply(&g, &mut z_full);
        // "Recover" page 1 by re-solving its coupled block system.
        let range = jacobi.partition().range(1);
        let mut z_page = vec![0.0; range.len()];
        assert!(relations.reapply_preconditioner(1, &g[range.clone()], &mut z_page));
        assert_eq!(&z_full[range], z_page.as_slice());
    }

    #[test]
    fn split_related_isolates_conflicts() {
        let (rec_a, rec_b, conflicted) = split_related(&[0, 2, 5], &[2, 3]);
        assert_eq!(rec_a, vec![0, 5]);
        assert_eq!(rec_b, vec![3]);
        assert_eq!(conflicted, vec![2]);
    }

    #[test]
    fn overlap_runs_both_closures_in_either_mode() {
        for asynchronous in [false, true] {
            let (a, b) = overlap(asynchronous, || 6 * 7, || "done");
            assert_eq!(a, 42);
            assert_eq!(b, "done");
        }
    }

    #[test]
    fn cg_and_pcg_relations_agree_on_shared_kernels() {
        let a = poisson_2d(10);
        let n = a.rows();
        let (x_true, b) = manufactured_rhs(&a, 7);
        let jacobi = LocalBlockJacobi::new(&a, 0..n, 25, true).unwrap();
        let cg = CgRelations::new(&a, &b);
        let pcg = PcgRelations::new(&a, &b, &jacobi);
        let d = x_true.clone();
        let mut q = vec![0.0; n];
        a.spmv(&d, &mut q);
        let rows: Vec<usize> = (10..30).collect();
        let q_at_rows: Vec<f64> = rows.iter().map(|&r| q[r]).collect();
        let mut damaged = d.clone();
        for &r in &rows {
            damaged[r] = f64::NAN;
        }
        let from_cg = cg
            .reconstruct_direction(&rows, &q_at_rows, &damaged)
            .unwrap();
        let from_pcg = pcg
            .reconstruct_direction(&rows, &q_at_rows, &damaged)
            .unwrap();
        for (u, v) in from_cg.iter().zip(&from_pcg) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
        for (k, &r) in rows.iter().enumerate() {
            assert!((from_cg[k] - d[r]).abs() < 1e-8, "row {r}");
        }
    }
}
