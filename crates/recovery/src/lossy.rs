//! The Lossy Restart (Section 4.3), adapted from Langou et al.'s Lossy
//! Approach to the paper's page-level error model.
//!
//! When a page of the iterate `x` is lost, one block-Jacobi step interpolates
//! a replacement from constant data and the surviving parts of `x`:
//!
//! ```text
//! A_ii x_i = b_i − Σ_{j≠i} A_ij x_j
//! ```
//!
//! (note: *without* the residual `g`, unlike the exact FEIR recovery). The
//! solver is then restarted from the interpolated iterate, which discards the
//! Krylov space and therefore CG's superlinear convergence — that is the
//! performance gap Figure 3 and 4 of the paper show.
//!
//! Theorems 1–3 of the paper characterise this interpolation: it is
//! contracting, diminishes the A-norm of the error, and (Theorem 3, proved in
//! the paper) *minimises* the A-norm of the error over all possible values of
//! the lost block. The helpers here expose the quantities the property tests
//! in `tests/theorems.rs` verify.

use feir_sparse::blocking::{BlockPartition, DiagonalBlocks};
use feir_sparse::{vecops, CsrMatrix, SpmvBackend};

/// Interpolates one lost block of the iterate with a block-Jacobi step.
///
/// `x` is read outside `block` only. Returns the interpolated block, or `None`
/// if the diagonal block cannot be solved.
pub fn lossy_interpolate_block(
    a: &CsrMatrix,
    b: &[f64],
    x: &[f64],
    blocks: &DiagonalBlocks,
    block: usize,
) -> Option<Vec<f64>> {
    let partition = blocks.partition();
    let range = partition.range(block);
    let mut rhs = vec![0.0; range.len()];
    SpmvBackend::select_rows(a, range.clone()).spmv_rows_excluding(
        a,
        range.start,
        range.end,
        range.start,
        range.end,
        x,
        &mut rhs,
    );
    for (k, r) in range.enumerate() {
        rhs[k] = b[r] - rhs[k];
    }
    blocks.solve(block, &rhs)
}

/// Applies the lossy interpolation in place for every block in `lost_blocks`.
///
/// Blocks are interpolated one at a time against the current content of `x`
/// (lost blocks are zero), which matches the paper's single-error-per-relation
/// assumption; the multi-error combined solve of FEIR is intentionally *not*
/// used here to stay faithful to the Lossy Restart baseline.
pub fn lossy_interpolate_in_place(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    blocks: &DiagonalBlocks,
    lost_blocks: &[usize],
) -> usize {
    let mut recovered = 0;
    for &block in lost_blocks {
        if let Some(values) = lossy_interpolate_block(a, b, x, blocks, block) {
            let range = blocks.partition().range(block);
            x[range].copy_from_slice(&values);
            recovered += 1;
        }
    }
    recovered
}

/// The contraction constant of Theorem 1:
/// `c_i = (1 + ‖A_ii⁻¹‖ · Σ_{j≠i} ‖A_ij‖)^{1/2}` (norms are spectral norms;
/// we bound them with Frobenius norms, which only enlarges the constant and
/// keeps the theorem's inequality checkable).
pub fn theorem1_contraction_constant(
    a: &CsrMatrix,
    partition: BlockPartition,
    block: usize,
) -> f64 {
    let range = partition.range(block);
    let a_ii = a.dense_block(range.start, range.end, range.start, range.end);
    // ‖A_ii⁻¹‖: invert through LU column by column (the block is small).
    let lu = match a_ii.lu() {
        Ok(lu) => lu,
        Err(_) => return f64::INFINITY,
    };
    let m = range.len();
    let mut inv_norm_sq = 0.0;
    let mut e = vec![0.0; m];
    for j in 0..m {
        e.iter_mut().for_each(|v| *v = 0.0);
        e[j] = 1.0;
        let col = lu.solve(&e);
        inv_norm_sq += col.iter().map(|v| v * v).sum::<f64>();
    }
    let inv_norm = inv_norm_sq.sqrt();
    // Σ_{j≠i} ‖A_ij‖_F over the other column blocks.
    let mut off_sum = 0.0;
    for (other, other_range) in partition.iter() {
        if other == block {
            continue;
        }
        let a_ij = a.dense_block(range.start, range.end, other_range.start, other_range.end);
        off_sum += a_ij.frobenius_norm();
    }
    (1.0 + inv_norm * off_sum).sqrt()
}

/// Error of an iterate in the A-norm, `‖x* − x‖_A`, given the exact solution.
pub fn a_norm_error(a: &CsrMatrix, x_exact: &[f64], x: &[f64]) -> f64 {
    let mut e: Vec<f64> = x_exact.iter().zip(x).map(|(s, v)| s - v).collect();
    // Guard against NaN garbage in lost blocks leaking into the norm.
    for v in &mut e {
        if !v.is_finite() {
            *v = 0.0;
        }
    }
    vecops::a_norm(a, &e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_sparse::generators::{manufactured_rhs, poisson_2d, random_spd};

    fn setup(
        seed: u64,
    ) -> (
        CsrMatrix,
        BlockPartition,
        DiagonalBlocks,
        Vec<f64>,
        Vec<f64>,
        Vec<f64>,
    ) {
        let a = poisson_2d(12); // 144 unknowns
        let n = a.rows();
        let partition = BlockPartition::new(n, 36);
        let blocks = DiagonalBlocks::factorize(&a, partition, true).unwrap();
        let (x_exact, b) = manufactured_rhs(&a, seed);
        // A partially converged iterate: a noisy version of the solution.
        let x: Vec<f64> = x_exact
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.05 * ((i * 31 % 17) as f64 - 8.0) / 8.0)
            .collect();
        (a, partition, blocks, x_exact, x, b)
    }

    #[test]
    fn interpolation_restores_exact_solution_fixed_point() {
        // Fixed-point property: if x == x*, the interpolated block equals x*.
        let (a, partition, blocks, x_exact, _, b) = setup(3);
        for block in 0..partition.num_blocks() {
            let out = lossy_interpolate_block(&a, &b, &x_exact, &blocks, block).unwrap();
            for (k, r) in partition.range(block).enumerate() {
                assert!((out[k] - x_exact[r]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn theorem2_interpolation_diminishes_a_norm_error() {
        let (a, partition, blocks, x_exact, x, b) = setup(7);
        for block in 0..partition.num_blocks() {
            let mut damaged = x.clone();
            for v in &mut damaged[partition.range(block)] {
                *v = 0.0;
            }
            let err_before = a_norm_error(&a, &x_exact, &x);
            let mut interpolated = damaged.clone();
            let recovered =
                lossy_interpolate_in_place(&a, &b, &mut interpolated, &blocks, &[block]);
            assert_eq!(recovered, 1);
            let err_after = a_norm_error(&a, &x_exact, &interpolated);
            assert!(
                err_after <= err_before * (1.0 + 1e-12),
                "block {block}: {err_after} > {err_before}"
            );
        }
    }

    #[test]
    fn theorem3_interpolation_minimizes_a_norm_over_block_values() {
        // Compare the A-norm error of the interpolated block against several
        // alternative replacements (zeros, the old values, random noise): the
        // interpolation must be at least as good as all of them.
        let (a, partition, blocks, x_exact, x, b) = setup(11);
        let block = 1;
        let range = partition.range(block);
        let mut interpolated = x.clone();
        for v in &mut interpolated[range.clone()] {
            *v = 0.0;
        }
        lossy_interpolate_in_place(&a, &b, &mut interpolated, &blocks, &[block]);
        let err_interpolated = a_norm_error(&a, &x_exact, &interpolated);

        let mut alternatives: Vec<Vec<f64>> = Vec::new();
        // zeros
        let mut alt = x.clone();
        for v in &mut alt[range.clone()] {
            *v = 0.0;
        }
        alternatives.push(alt);
        // keep the old (pre-loss) values
        alternatives.push(x.clone());
        // pseudo-random noise
        let mut alt = x.clone();
        for (k, v) in alt[range.clone()].iter_mut().enumerate() {
            *v = ((k * 37 % 23) as f64 - 11.0) * 0.1;
        }
        alternatives.push(alt);

        for (i, alt) in alternatives.iter().enumerate() {
            let err_alt = a_norm_error(&a, &x_exact, alt);
            assert!(
                err_interpolated <= err_alt + 1e-12,
                "alternative {i} beats the interpolation: {err_alt} < {err_interpolated}"
            );
        }
    }

    #[test]
    fn theorem1_contraction_holds() {
        let (a, partition, blocks, x_exact, x, b) = setup(13);
        let block = 2;
        let c = theorem1_contraction_constant(&a, partition, block);
        assert!(c.is_finite() && c >= 1.0);
        let mut damaged = x.clone();
        for v in &mut damaged[partition.range(block)] {
            *v = 0.0;
        }
        let mut interpolated = damaged.clone();
        lossy_interpolate_in_place(&a, &b, &mut interpolated, &blocks, &[block]);
        // ‖e_I‖ ≤ c ‖e‖ in the 2-norm per Theorem 1.
        let e: f64 = x_exact
            .iter()
            .zip(&x)
            .map(|(s, v)| (s - v) * (s - v))
            .sum::<f64>()
            .sqrt();
        let e_i: f64 = x_exact
            .iter()
            .zip(&interpolated)
            .map(|(s, v)| (s - v) * (s - v))
            .sum::<f64>()
            .sqrt();
        assert!(e_i <= c * e * (1.0 + 1e-12), "{e_i} > {c} * {e}");
    }

    #[test]
    fn interpolation_works_on_random_spd_matrices() {
        let a = random_spd(120, 4, 77);
        let n = a.rows();
        let partition = BlockPartition::new(n, 30);
        let blocks = DiagonalBlocks::factorize(&a, partition, true).unwrap();
        let (x_exact, b) = manufactured_rhs(&a, 1);
        let x: Vec<f64> = x_exact.iter().map(|v| v * 0.9).collect();
        let mut damaged = x.clone();
        for v in &mut damaged[partition.range(2)] {
            *v = 0.0;
        }
        let before = a_norm_error(&a, &x_exact, &x);
        lossy_interpolate_in_place(&a, &b, &mut damaged, &blocks, &[2]);
        let after = a_norm_error(&a, &x_exact, &damaged);
        assert!(after <= before * (1.0 + 1e-12));
    }
}
