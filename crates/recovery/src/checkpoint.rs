//! Checkpoint / rollback baseline (Section 4.2).
//!
//! The paper's rollback recovery periodically writes the iterate `x` and the
//! search direction `d` of each processing element to its local disk (the
//! minimum state needed to resume CG), and rolls every PE back to the latest
//! checkpoint when a DUE is discovered. The checkpoint interval is chosen to
//! minimise expected run time given the checkpoint cost and the MTBE, following
//! the first-order optimum of Young/Daly as used in the paper
//! (Bougeret et al., JPDC 2014).

use std::io::{Read, Write};
use std::path::PathBuf;
use std::time::Duration;

/// Where checkpoints are stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointTarget {
    /// Keep the snapshot in memory (fast; used in unit tests).
    Memory,
    /// Write the snapshot to a file in the given directory, mimicking the
    /// paper's local-disk checkpointing and paying a realistic I/O cost.
    LocalDisk(PathBuf),
}

/// A checkpoint store holding the latest snapshot of `x` and `d`.
#[derive(Debug)]
pub struct CheckpointStore {
    target: CheckpointTarget,
    /// Iteration at which the last snapshot was taken.
    last_iteration: Option<usize>,
    /// In-memory copy (also kept when writing to disk, as the paper assumes
    /// the process itself survives — only data pages are lost).
    x: Vec<f64>,
    d: Vec<f64>,
    scalar_state: Vec<f64>,
    /// Number of checkpoints written / rollbacks served.
    checkpoints_written: usize,
    rollbacks: usize,
}

impl CheckpointStore {
    /// Creates an empty store.
    pub fn new(target: CheckpointTarget) -> Self {
        Self {
            target,
            last_iteration: None,
            x: Vec::new(),
            d: Vec::new(),
            scalar_state: Vec::new(),
            checkpoints_written: 0,
            rollbacks: 0,
        }
    }

    /// Creates a store that writes to a fresh temporary directory on disk.
    pub fn on_temp_disk() -> Self {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let unique = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("feir-ckpt-{}-{}", std::process::id(), unique));
        let _ = std::fs::create_dir_all(&dir);
        Self::new(CheckpointTarget::LocalDisk(dir))
    }

    /// Number of checkpoints written so far.
    pub fn checkpoints_written(&self) -> usize {
        self.checkpoints_written
    }

    /// Number of rollbacks served so far.
    pub fn rollbacks(&self) -> usize {
        self.rollbacks
    }

    /// Iteration of the last snapshot, if any.
    pub fn last_iteration(&self) -> Option<usize> {
        self.last_iteration
    }

    /// Takes a snapshot of the solver state at `iteration`.
    ///
    /// `scalar_state` carries the handful of scalars needed to resume (the
    /// previous ε / ρ), so the restart is exact.
    pub fn checkpoint(&mut self, iteration: usize, x: &[f64], d: &[f64], scalar_state: &[f64]) {
        self.x.clear();
        self.x.extend_from_slice(x);
        self.d.clear();
        self.d.extend_from_slice(d);
        self.scalar_state.clear();
        self.scalar_state.extend_from_slice(scalar_state);
        self.last_iteration = Some(iteration);
        self.checkpoints_written += 1;
        if let CheckpointTarget::LocalDisk(dir) = &self.target {
            // Pay the real I/O cost of writing the vectors, like the paper's
            // local-disk checkpoints do.
            let path = dir.join("cg-checkpoint.bin");
            if let Ok(mut file) = std::fs::File::create(&path) {
                let as_bytes =
                    |v: &[f64]| -> Vec<u8> { v.iter().flat_map(|x| x.to_le_bytes()).collect() };
                let _ = file.write_all(&(iteration as u64).to_le_bytes());
                let _ = file.write_all(&as_bytes(x));
                let _ = file.write_all(&as_bytes(d));
                let _ = file.write_all(&as_bytes(scalar_state));
                let _ = file.sync_all();
            }
        }
    }

    /// Restores the latest snapshot into the given buffers and returns the
    /// iteration to resume from, or `None` if no checkpoint was ever taken.
    pub fn rollback(
        &mut self,
        x: &mut [f64],
        d: &mut [f64],
        scalar_state: &mut Vec<f64>,
    ) -> Option<usize> {
        let iteration = self.last_iteration?;
        if let CheckpointTarget::LocalDisk(dir) = &self.target {
            // Pay the read cost; the actual payload equals the in-memory copy.
            let path = dir.join("cg-checkpoint.bin");
            if let Ok(mut file) = std::fs::File::open(&path) {
                let mut buf = Vec::new();
                let _ = file.read_to_end(&mut buf);
            }
        }
        x.copy_from_slice(&self.x);
        d.copy_from_slice(&self.d);
        scalar_state.clear();
        scalar_state.extend_from_slice(&self.scalar_state);
        self.rollbacks += 1;
        Some(iteration)
    }
}

impl Drop for CheckpointStore {
    fn drop(&mut self) {
        if let CheckpointTarget::LocalDisk(dir) = &self.target {
            let _ = std::fs::remove_file(dir.join("cg-checkpoint.bin"));
            let _ = std::fs::remove_dir(dir);
        }
    }
}

/// Optimal checkpoint interval in *iterations*, following the Young/Daly
/// first-order optimum `T_opt = sqrt(2 · C · MTBE)` used by the paper, where
/// `C` is the time to write one checkpoint.
///
/// * `checkpoint_cost` — measured (or estimated) time to write one checkpoint,
/// * `mtbe` — mean time between errors,
/// * `iteration_time` — measured time of one solver iteration.
///
/// The returned interval is clamped to at least 1 iteration.
pub fn optimal_checkpoint_interval(
    checkpoint_cost: Duration,
    mtbe: Duration,
    iteration_time: Duration,
) -> usize {
    let c = checkpoint_cost.as_secs_f64();
    let m = mtbe.as_secs_f64();
    let it = iteration_time.as_secs_f64().max(1e-12);
    if c <= 0.0 || !m.is_finite() || m <= 0.0 {
        // Free checkpoints -> checkpoint every iteration; no errors -> huge interval.
        return if m.is_finite() && m > 0.0 {
            1
        } else {
            usize::MAX / 2
        };
    }
    let t_opt = (2.0 * c * m).sqrt();
    ((t_opt / it).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_checkpoint_roundtrip() {
        let mut store = CheckpointStore::new(CheckpointTarget::Memory);
        assert_eq!(store.last_iteration(), None);
        let x = vec![1.0, 2.0, 3.0];
        let d = vec![4.0, 5.0, 6.0];
        store.checkpoint(17, &x, &d, &[0.25]);
        assert_eq!(store.checkpoints_written(), 1);

        let mut x2 = vec![0.0; 3];
        let mut d2 = vec![0.0; 3];
        let mut scalars = Vec::new();
        let iter = store.rollback(&mut x2, &mut d2, &mut scalars);
        assert_eq!(iter, Some(17));
        assert_eq!(x2, x);
        assert_eq!(d2, d);
        assert_eq!(scalars, vec![0.25]);
        assert_eq!(store.rollbacks(), 1);
    }

    #[test]
    fn rollback_without_checkpoint_returns_none() {
        let mut store = CheckpointStore::new(CheckpointTarget::Memory);
        let mut x = vec![0.0; 2];
        let mut d = vec![0.0; 2];
        let mut s = Vec::new();
        assert_eq!(store.rollback(&mut x, &mut d, &mut s), None);
    }

    #[test]
    fn disk_checkpoint_roundtrip() {
        let mut store = CheckpointStore::on_temp_disk();
        let x: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let d: Vec<f64> = (0..1000).map(|i| -(i as f64)).collect();
        store.checkpoint(3, &x, &d, &[1.0, 2.0]);
        store.checkpoint(6, &x, &d, &[3.0, 4.0]);
        assert_eq!(store.checkpoints_written(), 2);
        let mut x2 = vec![0.0; 1000];
        let mut d2 = vec![0.0; 1000];
        let mut s = Vec::new();
        assert_eq!(store.rollback(&mut x2, &mut d2, &mut s), Some(6));
        assert_eq!(x2[999], 999.0);
        assert_eq!(s, vec![3.0, 4.0]);
    }

    #[test]
    fn newer_checkpoint_overwrites_older() {
        let mut store = CheckpointStore::new(CheckpointTarget::Memory);
        store.checkpoint(1, &[1.0], &[1.0], &[]);
        store.checkpoint(2, &[2.0], &[2.0], &[]);
        let mut x = vec![0.0];
        let mut d = vec![0.0];
        let mut s = Vec::new();
        assert_eq!(store.rollback(&mut x, &mut d, &mut s), Some(2));
        assert_eq!(x, vec![2.0]);
    }

    #[test]
    fn optimal_interval_follows_young_daly() {
        // C = 2 ms, MTBE = 1 s -> T_opt = sqrt(2*0.002*1) ≈ 63 ms.
        // With 1 ms iterations that is ~63 iterations.
        let interval = optimal_checkpoint_interval(
            Duration::from_millis(2),
            Duration::from_secs(1),
            Duration::from_millis(1),
        );
        assert!((50..=80).contains(&interval), "interval = {interval}");
    }

    #[test]
    fn optimal_interval_edge_cases() {
        // No errors expected: effectively never checkpoint.
        let huge = optimal_checkpoint_interval(
            Duration::from_millis(1),
            Duration::from_secs(0),
            Duration::from_millis(1),
        );
        assert!(huge > 1_000_000);
        // Longer MTBE -> longer interval (monotonicity).
        let short = optimal_checkpoint_interval(
            Duration::from_millis(1),
            Duration::from_secs(1),
            Duration::from_millis(1),
        );
        let long = optimal_checkpoint_interval(
            Duration::from_millis(1),
            Duration::from_secs(100),
            Duration::from_millis(1),
        );
        assert!(long > short);
    }
}
