//! Exact block interpolation: the recoveries of Table 1.
//!
//! Every routine reconstructs one page-sized block of a solver vector from a
//! redundancy relation that holds by construction. When the lost block sits on
//! the left-hand side the reconstruction is a direct recomputation; when it
//! sits on the right-hand side a small diagonal-block system `A_ii y_i = r_i`
//! is solved with the pre-factorized blocks (Cholesky for SPD matrices, LU
//! otherwise, least squares as last resort). These reconstructions are *exact*
//! up to round-off, which is what preserves CG's convergence (Section 2.3).

use feir_sparse::blocking::{BlockPartition, DiagonalBlocks};
use feir_sparse::{CsrMatrix, DenseMatrix, SpmvBackend};

/// Pre-computed state needed to recover blocks of the CG/PCG vectors.
#[derive(Debug, Clone)]
pub struct BlockRecovery {
    partition: BlockPartition,
    diagonal_blocks: DiagonalBlocks,
}

impl BlockRecovery {
    /// Builds the recovery helper: extracts and factorizes all diagonal
    /// blocks of `a` over the page partition.
    ///
    /// For the paper's PCG configuration the block-Jacobi preconditioner uses
    /// the same blocks, so this factorization is shared and effectively free;
    /// for non-preconditioned CG it is the "at worst factorizing a diagonal
    /// block" cost mentioned in Section 2.3 (done once here).
    pub fn new(a: &CsrMatrix, partition: BlockPartition, spd: bool) -> Self {
        let diagonal_blocks = DiagonalBlocks::factorize(a, partition, spd)
            .expect("matrix must be square and match the partition");
        Self {
            partition,
            diagonal_blocks,
        }
    }

    /// Builds the helper reusing already-factorized diagonal blocks (shared
    /// with a block-Jacobi preconditioner).
    pub fn from_diagonal_blocks(diagonal_blocks: DiagonalBlocks) -> Self {
        Self {
            partition: diagonal_blocks.partition(),
            diagonal_blocks,
        }
    }

    /// The block partition used.
    pub fn partition(&self) -> BlockPartition {
        self.partition
    }

    /// Access to the factorized diagonal blocks.
    pub fn diagonal_blocks(&self) -> &DiagonalBlocks {
        &self.diagonal_blocks
    }

    /// **lhs, `q = A·d`**: recomputes block `i` of the product, `q_i = Σ_j A_ij d_j`.
    pub fn recover_matvec_lhs(&self, a: &CsrMatrix, d: &[f64], block: usize, out: &mut [f64]) {
        let range = self.partition.range(block);
        debug_assert_eq!(out.len(), range.len());
        a.spmv_rows(range.start, range.end, d, out);
    }

    /// **rhs, `q = A·d`**: recovers block `i` of the *operand*:
    /// `A_ii d_i = q_i − Σ_{j≠i} A_ij d_j`.
    ///
    /// `d` must contain valid data outside block `i` (its content inside the
    /// block is ignored). Returns `false` if the diagonal block is singular
    /// and the least-squares fallback also fails.
    pub fn recover_matvec_rhs(
        &self,
        a: &CsrMatrix,
        q: &[f64],
        d: &[f64],
        block: usize,
        out: &mut [f64],
    ) -> bool {
        let range = self.partition.range(block);
        debug_assert_eq!(out.len(), range.len());
        let mut rhs = vec![0.0; range.len()];
        SpmvBackend::select_rows(a, range.clone()).spmv_rows_excluding(
            a,
            range.start,
            range.end,
            range.start,
            range.end,
            d,
            &mut rhs,
        );
        for (k, r) in range.clone().enumerate() {
            rhs[k] = q[r] - rhs[k];
        }
        self.solve_block(a, block, &rhs, out)
    }

    /// **lhs, `g = b − A·x`**: recomputes block `i` of the residual.
    pub fn recover_residual_lhs(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x: &[f64],
        block: usize,
        out: &mut [f64],
    ) {
        let range = self.partition.range(block);
        debug_assert_eq!(out.len(), range.len());
        a.spmv_rows(range.start, range.end, x, out);
        for (k, r) in range.enumerate() {
            out[k] = b[r] - out[k];
        }
    }

    /// **rhs, `g = b − A·x`**: recovers block `i` of the *iterate*:
    /// `A_ii x_i = b_i − g_i − Σ_{j≠i} A_ij x_j`.
    ///
    /// This is the recovery Chen used together with implicit checkpointing;
    /// here it runs forward, with no checkpoint at all.
    pub fn recover_iterate_rhs(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        g: &[f64],
        x: &[f64],
        block: usize,
        out: &mut [f64],
    ) -> bool {
        let range = self.partition.range(block);
        debug_assert_eq!(out.len(), range.len());
        let mut rhs = vec![0.0; range.len()];
        SpmvBackend::select_rows(a, range.clone()).spmv_rows_excluding(
            a,
            range.start,
            range.end,
            range.start,
            range.end,
            x,
            &mut rhs,
        );
        for (k, r) in range.clone().enumerate() {
            rhs[k] = b[r] - g[r] - rhs[k];
        }
        self.solve_block(a, block, &rhs, out)
    }

    /// **linear combination `u = α·v + β·w`**: recomputes block `i` directly.
    pub fn recover_linear_combination(
        &self,
        alpha: f64,
        v: &[f64],
        beta: f64,
        w: &[f64],
        block: usize,
        out: &mut [f64],
    ) {
        let range = self.partition.range(block);
        debug_assert_eq!(out.len(), range.len());
        for (k, r) in range.enumerate() {
            out[k] = alpha * v[r] + beta * w[r];
        }
    }

    /// Combined recovery of several simultaneously lost blocks of the iterate
    /// (Section 2.4, case 1): solves the coupled system over all lost blocks.
    ///
    /// Returns `None` if the combined sub-matrix is singular.
    pub fn recover_iterate_multi(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        g: &[f64],
        x: &[f64],
        blocks: &[usize],
        spd: bool,
    ) -> Option<Vec<f64>> {
        let ranges: Vec<_> = blocks
            .iter()
            .map(|&blk| self.partition.range(blk))
            .collect();
        let mut rhs = Vec::with_capacity(ranges.iter().map(|r| r.len()).sum());
        for ri in &ranges {
            for r in ri.clone() {
                let (cols, vals) = a.row(r);
                let mut acc = b[r] - g[r];
                for (c, v) in cols.iter().zip(vals) {
                    let lost = ranges.iter().any(|rj| rj.contains(c));
                    if !lost {
                        acc -= v * x[*c];
                    }
                }
                rhs.push(acc);
            }
        }
        self.diagonal_blocks.solve_combined(a, blocks, &rhs, spd)
    }

    /// Solves `A_ii y = rhs` with the pre-factorized block; falls back to a
    /// least-squares solve on the full block column when the block is
    /// singular (Agullo et al.'s approach for non-SPD matrices).
    fn solve_block(&self, a: &CsrMatrix, block: usize, rhs: &[f64], out: &mut [f64]) -> bool {
        if let Some(solution) = self.diagonal_blocks.solve(block, rhs) {
            out.copy_from_slice(&solution);
            return true;
        }
        // Least-squares fallback on the full column block: minimise
        // ‖A[:, range]·y − r_full‖ where r_full is the global residual of the
        // relation restricted to the known data. For the diagonal-block
        // relation the restriction of the rhs to the block rows is what we
        // have, so solve the (possibly rank-deficient) block in the
        // least-squares sense.
        let range = self.partition.range(block);
        let block_matrix = a.dense_block(range.start, range.end, range.start, range.end);
        match least_squares(&block_matrix, rhs) {
            Some(solution) => {
                out.copy_from_slice(&solution);
                true
            }
            None => false,
        }
    }
}

/// Minimum-norm-ish least squares via the normal equations with a small Tikhonov
/// shift; used only as a last-resort fallback for singular diagonal blocks.
fn least_squares(m: &DenseMatrix, rhs: &[f64]) -> Option<Vec<f64>> {
    let n = m.cols();
    let mt = m.transpose();
    let mut normal = mt.matmul(m);
    let shift = 1e-12 * (1.0 + normal.frobenius_norm());
    for i in 0..n {
        normal.add_to(i, i, shift);
    }
    let rhs_t = mt.matvec(rhs);
    normal.cholesky().ok().map(|c| c.solve(&rhs_t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_sparse::generators::{manufactured_rhs, poisson_2d};
    use feir_sparse::vecops;

    fn setup() -> (CsrMatrix, BlockPartition, BlockRecovery, Vec<f64>, Vec<f64>) {
        let a = poisson_2d(16); // n = 256
        let n = a.rows();
        let partition = BlockPartition::new(n, 64);
        let recovery = BlockRecovery::new(&a, partition, true);
        let (x, b) = manufactured_rhs(&a, 99);
        (a, partition, recovery, x, b)
    }

    #[test]
    fn matvec_lhs_recovery_is_exact() {
        let (a, partition, recovery, d, _) = setup();
        let mut q = vec![0.0; a.rows()];
        a.spmv(&d, &mut q);
        for block in 0..partition.num_blocks() {
            let range = partition.range(block);
            let mut out = vec![0.0; range.len()];
            recovery.recover_matvec_lhs(&a, &d, block, &mut out);
            for (k, r) in range.enumerate() {
                assert!((out[k] - q[r]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matvec_rhs_recovery_is_exact() {
        let (a, partition, recovery, d, _) = setup();
        let mut q = vec![0.0; a.rows()];
        a.spmv(&d, &mut q);
        for block in 0..partition.num_blocks() {
            let range = partition.range(block);
            // Corrupt the block in a copy of d; recovery must not read it.
            let mut d_damaged = d.clone();
            for v in &mut d_damaged[range.clone()] {
                *v = f64::NAN;
            }
            let mut out = vec![0.0; range.len()];
            assert!(recovery.recover_matvec_rhs(&a, &q, &d_damaged, block, &mut out));
            for (k, r) in range.enumerate() {
                assert!(
                    (out[k] - d[r]).abs() < 1e-9,
                    "block {block} row {r}: {} vs {}",
                    out[k],
                    d[r]
                );
            }
        }
    }

    #[test]
    fn residual_lhs_recovery_is_exact() {
        let (a, partition, recovery, x, b) = setup();
        let mut g = vec![0.0; a.rows()];
        a.spmv(&x, &mut g);
        for (gi, bi) in g.iter_mut().zip(&b) {
            *gi = bi - *gi;
        }
        let block = 2;
        let range = partition.range(block);
        let mut out = vec![0.0; range.len()];
        recovery.recover_residual_lhs(&a, &b, &x, block, &mut out);
        for (k, r) in range.enumerate() {
            assert!((out[k] - g[r]).abs() < 1e-12);
        }
    }

    #[test]
    fn iterate_rhs_recovery_is_exact() {
        let (a, partition, recovery, x, b) = setup();
        let mut g = vec![0.0; a.rows()];
        a.spmv(&x, &mut g);
        for (gi, bi) in g.iter_mut().zip(&b) {
            *gi = bi - *gi;
        }
        for block in [0usize, 1, 3] {
            let range = partition.range(block);
            let mut x_damaged = x.clone();
            for v in &mut x_damaged[range.clone()] {
                *v = 0.0;
            }
            let mut out = vec![0.0; range.len()];
            assert!(recovery.recover_iterate_rhs(&a, &b, &g, &x_damaged, block, &mut out));
            for (k, r) in range.enumerate() {
                assert!((out[k] - x[r]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn linear_combination_recovery_is_exact() {
        let (_, partition, recovery, v, w) = setup();
        let alpha = 0.3;
        let beta = -1.7;
        let u: Vec<f64> = v
            .iter()
            .zip(&w)
            .map(|(a, b)| alpha * a + beta * b)
            .collect();
        let block = 1;
        let range = partition.range(block);
        let mut out = vec![0.0; range.len()];
        recovery.recover_linear_combination(alpha, &v, beta, &w, block, &mut out);
        for (k, r) in range.enumerate() {
            assert!((out[k] - u[r]).abs() < 1e-14);
        }
    }

    #[test]
    fn multi_block_iterate_recovery_is_exact() {
        let (a, partition, recovery, x, b) = setup();
        let mut g = vec![0.0; a.rows()];
        a.spmv(&x, &mut g);
        for (gi, bi) in g.iter_mut().zip(&b) {
            *gi = bi - *gi;
        }
        let lost = [1usize, 2usize];
        let mut x_damaged = x.clone();
        for &blk in &lost {
            for v in &mut x_damaged[partition.range(blk)] {
                *v = 0.0;
            }
        }
        let recovered = recovery
            .recover_iterate_multi(&a, &b, &g, &x_damaged, &lost, true)
            .expect("combined solve must succeed for SPD A");
        let mut k = 0;
        for &blk in &lost {
            for r in partition.range(blk) {
                assert!((recovered[k] - x[r]).abs() < 1e-9);
                k += 1;
            }
        }
    }

    #[test]
    fn recovered_data_preserves_cg_convergence() {
        // The headline property: after an exact recovery the solver state is
        // bit-for-bit (up to round-off) what it would have been, so CG
        // converges in the same number of iterations.
        use feir_solvers::{cg, SolveOptions};
        let a = poisson_2d(16);
        let (_, b) = manufactured_rhs(&a, 5);
        let clean = cg(&a, &b, None, &SolveOptions::default());

        // Manually run CG, lose a block of d mid-way, recover it exactly, and
        // check the final iteration count matches.
        let n = a.rows();
        let partition = BlockPartition::new(n, 64);
        let recovery = BlockRecovery::new(&a, partition, true);
        let mut x = vec![0.0; n];
        let mut g = b.clone();
        let mut d = vec![0.0; n];
        let mut q = vec![0.0; n];
        let mut eps_old = f64::INFINITY;
        let norm_b = vecops::norm2(&b);
        let mut iterations = 0;
        for t in 0..10_000 {
            let eps = vecops::norm2_squared(&g);
            if eps.sqrt() / norm_b <= 1e-10 {
                iterations = t;
                break;
            }
            let beta = if eps_old.is_finite() {
                eps / eps_old
            } else {
                0.0
            };
            vecops::xpay(&g, beta, &mut d);
            a.spmv(&d, &mut q);
            if t == 7 {
                // Lose block 2 of d *after* q was computed, then recover it
                // from the inverse matvec relation.
                let range = partition.range(2);
                for v in &mut d[range.clone()] {
                    *v = 0.0;
                }
                let mut out = vec![0.0; range.len()];
                assert!(recovery.recover_matvec_rhs(&a, &q, &d, 2, &mut out));
                d[range].copy_from_slice(&out);
            }
            let alpha = eps / vecops::dot(&q, &d);
            vecops::axpy(alpha, &d, &mut x);
            vecops::axpy(-alpha, &q, &mut g);
            eps_old = eps;
            iterations = t + 1;
        }
        assert_eq!(
            iterations, clean.iterations,
            "exact recovery must not change convergence"
        );
    }
}
