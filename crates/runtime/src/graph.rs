//! Task graphs with data-flow dependences inferred from region annotations.
//!
//! Tasks are added in *sequential program order* with the set of data regions
//! they read and write, exactly like OmpSs `in`/`out`/`inout` clauses. The
//! graph derives read-after-write, write-after-read and write-after-write
//! edges from overlapping accesses, which reproduces the dependency structure
//! shown in Figure 1 of the paper for the CG task decomposition.

use std::collections::HashMap;

use crate::task::{Priority, TaskKind};

/// Identifier of a logical data region (e.g. "page 3 of vector q" or
/// "the scalar α"). The runtime does not interpret region ids beyond equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

/// Identifier of a task within one [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Access mode of a task on a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// The task only reads the region (`in`).
    Read,
    /// The task overwrites the region (`out`).
    Write,
    /// The task reads and updates the region (`inout`).
    ReadWrite,
}

/// A single region access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The region touched.
    pub region: RegionId,
    /// How it is touched.
    pub mode: AccessMode,
}

impl Access {
    /// Convenience constructor for a read access.
    pub fn read(region: RegionId) -> Self {
        Self {
            region,
            mode: AccessMode::Read,
        }
    }

    /// Convenience constructor for a write access.
    pub fn write(region: RegionId) -> Self {
        Self {
            region,
            mode: AccessMode::Write,
        }
    }

    /// Convenience constructor for a read-write access.
    pub fn read_write(region: RegionId) -> Self {
        Self {
            region,
            mode: AccessMode::ReadWrite,
        }
    }

    fn reads(&self) -> bool {
        matches!(self.mode, AccessMode::Read | AccessMode::ReadWrite)
    }

    fn writes(&self) -> bool {
        matches!(self.mode, AccessMode::Write | AccessMode::ReadWrite)
    }
}

pub(crate) struct TaskNode {
    pub(crate) name: String,
    pub(crate) priority: Priority,
    pub(crate) kind: TaskKind,
    pub(crate) func: Box<dyn FnOnce() + Send + 'static>,
    pub(crate) dependents: Vec<TaskId>,
    pub(crate) num_predecessors: usize,
}

impl std::fmt::Debug for TaskNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskNode")
            .field("name", &self.name)
            .field("priority", &self.priority)
            .field("kind", &self.kind)
            .field("dependents", &self.dependents)
            .field("num_predecessors", &self.num_predecessors)
            .finish()
    }
}

/// Per-region bookkeeping used while building the graph.
#[derive(Debug, Default, Clone)]
struct RegionHistory {
    last_writer: Option<TaskId>,
    readers_since_last_write: Vec<TaskId>,
}

/// A task graph under construction / ready for execution.
#[derive(Debug, Default)]
pub struct TaskGraph {
    pub(crate) tasks: Vec<TaskNode>,
    history: HashMap<RegionId, RegionHistory>,
    edges: usize,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if no tasks have been added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of dependence edges inferred so far.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Adds a task in program order and infers its dependences from `accesses`.
    ///
    /// Returns the new task's id.
    pub fn add_task<F>(
        &mut self,
        name: impl Into<String>,
        kind: TaskKind,
        priority: Priority,
        accesses: &[Access],
        func: F,
    ) -> TaskId
    where
        F: FnOnce() + Send + 'static,
    {
        let id = TaskId(self.tasks.len());
        let mut predecessors: Vec<TaskId> = Vec::new();

        for access in accesses {
            let entry = self.history.entry(access.region).or_default();
            if access.reads() {
                // Read-after-write.
                if let Some(w) = entry.last_writer {
                    predecessors.push(w);
                }
            }
            if access.writes() {
                // Write-after-read and write-after-write.
                predecessors.extend(entry.readers_since_last_write.iter().copied());
                if let Some(w) = entry.last_writer {
                    predecessors.push(w);
                }
            }
        }
        predecessors.sort_unstable();
        predecessors.dedup();
        predecessors.retain(|p| *p != id);

        // Update the region history *after* computing dependences.
        for access in accesses {
            let entry = self.history.entry(access.region).or_default();
            if access.writes() {
                entry.last_writer = Some(id);
                entry.readers_since_last_write.clear();
            }
            if access.reads() && !access.writes() {
                entry.readers_since_last_write.push(id);
            }
        }

        for p in &predecessors {
            self.tasks[p.0].dependents.push(id);
        }
        self.edges += predecessors.len();

        self.tasks.push(TaskNode {
            name: name.into(),
            priority,
            kind,
            func: Box::new(func),
            dependents: Vec::new(),
            num_predecessors: predecessors.len(),
        });
        id
    }

    /// Adds a task with default compute kind and priority.
    pub fn add_compute<F>(
        &mut self,
        name: impl Into<String>,
        accesses: &[Access],
        func: F,
    ) -> TaskId
    where
        F: FnOnce() + Send + 'static,
    {
        self.add_task(name, TaskKind::Compute, Priority::COMPUTE, accesses, func)
    }

    /// Ids of tasks with no predecessors (ready at the start of execution).
    pub fn initially_ready(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.num_predecessors == 0)
            .map(|(i, _)| TaskId(i))
            .collect()
    }

    /// Name of a task (for diagnostics).
    pub fn task_name(&self, id: TaskId) -> &str {
        &self.tasks[id.0].name
    }

    /// Direct dependents of a task.
    pub fn dependents(&self, id: TaskId) -> &[TaskId] {
        &self.tasks[id.0].dependents
    }

    /// Number of predecessors of a task.
    pub fn num_predecessors(&self, id: TaskId) -> usize {
        self.tasks[id.0].num_predecessors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() {}

    #[test]
    fn raw_dependency_is_inferred() {
        let mut g = TaskGraph::new();
        let producer = g.add_compute("produce q", &[Access::write(RegionId(1))], noop);
        let consumer = g.add_compute("reduce <d,q>", &[Access::read(RegionId(1))], noop);
        assert_eq!(g.dependents(producer), &[consumer]);
        assert_eq!(g.num_predecessors(consumer), 1);
        assert_eq!(g.initially_ready(), vec![producer]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn war_and_waw_dependencies_are_inferred() {
        let mut g = TaskGraph::new();
        let reader = g.add_compute("read x", &[Access::read(RegionId(7))], noop);
        let writer1 = g.add_compute("write x", &[Access::write(RegionId(7))], noop);
        let writer2 = g.add_compute("write x again", &[Access::write(RegionId(7))], noop);
        // WAR: writer1 depends on reader; WAW: writer2 depends on writer1.
        assert_eq!(g.dependents(reader), &[writer1]);
        assert_eq!(g.dependents(writer1), &[writer2]);
        assert_eq!(g.num_predecessors(writer2), 1);
    }

    #[test]
    fn independent_regions_share_no_edges() {
        let mut g = TaskGraph::new();
        let a = g.add_compute("a", &[Access::write(RegionId(1))], noop);
        let b = g.add_compute("b", &[Access::write(RegionId(2))], noop);
        assert!(g.dependents(a).is_empty());
        assert!(g.dependents(b).is_empty());
        assert_eq!(g.initially_ready().len(), 2);
    }

    #[test]
    fn readers_do_not_depend_on_each_other() {
        let mut g = TaskGraph::new();
        let w = g.add_compute("w", &[Access::write(RegionId(3))], noop);
        let r1 = g.add_compute("r1", &[Access::read(RegionId(3))], noop);
        let r2 = g.add_compute("r2", &[Access::read(RegionId(3))], noop);
        assert_eq!(g.dependents(w), &[r1, r2]);
        assert!(g.dependents(r1).is_empty());
        assert_eq!(g.num_predecessors(r2), 1);
    }

    #[test]
    fn inout_chains_serialize() {
        let mut g = TaskGraph::new();
        let t0 = g.add_compute("u0", &[Access::read_write(RegionId(9))], noop);
        let t1 = g.add_compute("u1", &[Access::read_write(RegionId(9))], noop);
        let t2 = g.add_compute("u2", &[Access::read_write(RegionId(9))], noop);
        assert_eq!(g.dependents(t0), &[t1]);
        assert_eq!(g.dependents(t1), &[t2]);
        assert_eq!(g.initially_ready(), vec![t0]);
    }

    #[test]
    fn cg_like_reduction_pattern() {
        // Strip-mined q tasks (writers of q pages) all feed one reduction that
        // reads every page, reproducing the lattice of Figure 1.
        let mut g = TaskGraph::new();
        let pages = 4;
        let mut q_tasks = Vec::new();
        for p in 0..pages {
            q_tasks.push(g.add_compute(
                format!("q[{p}]"),
                &[Access::write(RegionId(100 + p as u64))],
                noop,
            ));
        }
        let accesses: Vec<Access> = (0..pages)
            .map(|p| Access::read(RegionId(100 + p as u64)))
            .collect();
        let red = g.add_task(
            "<d,q>",
            TaskKind::Reduction,
            Priority::REDUCTION,
            &accesses,
            noop,
        );
        for q in q_tasks {
            assert_eq!(g.dependents(q), &[red]);
        }
        assert_eq!(g.num_predecessors(red), pages);
    }

    #[test]
    fn duplicate_predecessors_collapse() {
        let mut g = TaskGraph::new();
        let w = g.add_compute(
            "w",
            &[Access::write(RegionId(1)), Access::write(RegionId(2))],
            noop,
        );
        let r = g.add_compute(
            "r",
            &[Access::read(RegionId(1)), Access::read(RegionId(2))],
            noop,
        );
        // Only one edge even though two regions connect the same pair.
        assert_eq!(g.dependents(w), &[r]);
        assert_eq!(g.num_predecessors(r), 1);
    }
}
