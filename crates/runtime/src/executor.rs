//! Worker-pool executor for task graphs.
//!
//! The executor reproduces the scheduling behaviour the paper relies on:
//! ready tasks are dispatched to a fixed pool of workers, highest priority
//! first, and every worker accounts for the time it spends executing task
//! bodies (useful), inside the scheduler (runtime) and waiting for work
//! (idle / load imbalance). Those three buckets feed Table 3.

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use parking_lot::{Condvar, Mutex};

use crate::graph::{TaskGraph, TaskId};
use crate::stats::{StateBreakdown, StateTimes};
use crate::task::{Priority, TaskKind};

/// Result of executing one task graph.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall-clock time of the whole graph execution.
    pub elapsed: Duration,
    /// Number of tasks executed.
    pub tasks_executed: usize,
    /// Per-worker state times.
    pub workers: Vec<StateTimes>,
    /// Time spent executing tasks, broken down by [`TaskKind`].
    pub time_by_kind: Vec<(TaskKind, Duration)>,
}

impl RunStats {
    /// Aggregated state breakdown over all workers.
    pub fn breakdown(&self) -> StateBreakdown {
        StateBreakdown::from_workers(&self.workers)
    }

    /// Total useful time across workers.
    pub fn total_useful(&self) -> Duration {
        self.workers.iter().map(|w| w.useful).sum()
    }

    /// Time spent in tasks of the given kind.
    pub fn time_for_kind(&self, kind: TaskKind) -> Duration {
        self.time_by_kind
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, d)| *d)
            .sum()
    }
}

#[derive(PartialEq, Eq)]
struct ReadyTask {
    priority: Priority,
    /// Tie-break on insertion order so equal-priority tasks run FIFO.
    sequence: usize,
    id: TaskId,
}

impl Ord for ReadyTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier sequence first.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for ReadyTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct SchedulerState {
    ready: BinaryHeap<ReadyTask>,
    remaining_predecessors: Vec<usize>,
    pending: usize,
    next_sequence: usize,
    shutdown: bool,
}

struct Scheduler {
    state: Mutex<SchedulerState>,
    work_available: Condvar,
}

/// A fixed-size worker pool executing [`TaskGraph`]s.
///
/// The pool is cheap to construct; worker threads live for the duration of a
/// single [`Executor::run`] call, which mirrors how the experiments submit one
/// dependency graph per solver iteration.
#[derive(Debug, Clone)]
pub struct Executor {
    num_workers: usize,
}

impl Executor {
    /// Creates an executor with the given number of workers.
    ///
    /// # Panics
    /// Panics if `num_workers == 0`.
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers > 0, "executor needs at least one worker");
        Self { num_workers }
    }

    /// Number of workers used for each run.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Executes the graph to completion and returns the run statistics.
    ///
    /// Task bodies run exactly once. Panics inside a task propagate after all
    /// workers have stopped.
    pub fn run(&self, graph: TaskGraph) -> RunStats {
        let started = Instant::now();
        let num_tasks = graph.tasks.len();
        if num_tasks == 0 {
            return RunStats {
                elapsed: started.elapsed(),
                tasks_executed: 0,
                workers: vec![StateTimes::default(); self.num_workers],
                time_by_kind: Vec::new(),
            };
        }

        // Move the task bodies out of the graph so workers can take them.
        let mut bodies: Vec<Option<TaskBody>> = Vec::with_capacity(num_tasks);
        let mut meta: Vec<(Priority, TaskKind, Vec<TaskId>)> = Vec::with_capacity(num_tasks);
        let mut remaining = Vec::with_capacity(num_tasks);
        for node in graph.tasks {
            bodies.push(Some(node.func));
            meta.push((node.priority, node.kind, node.dependents));
            remaining.push(node.num_predecessors);
        }
        let bodies = Arc::new(Mutex::new(bodies));
        let meta = Arc::new(meta);

        let mut ready = BinaryHeap::new();
        let mut sequence = 0usize;
        for (i, r) in remaining.iter().enumerate() {
            if *r == 0 {
                ready.push(ReadyTask {
                    priority: meta[i].0,
                    sequence,
                    id: TaskId(i),
                });
                sequence += 1;
            }
        }
        let scheduler = Arc::new(Scheduler {
            state: Mutex::new(SchedulerState {
                ready,
                remaining_predecessors: remaining,
                pending: num_tasks,
                next_sequence: sequence,
                shutdown: false,
            }),
            work_available: Condvar::new(),
        });

        let (stats_tx, stats_rx) = channel::unbounded();
        std::thread::scope(|scope| {
            for worker_index in 0..self.num_workers {
                let scheduler = Arc::clone(&scheduler);
                let bodies = Arc::clone(&bodies);
                let meta = Arc::clone(&meta);
                let stats_tx = stats_tx.clone();
                scope.spawn(move || {
                    let result = worker_loop(worker_index, &scheduler, &bodies, &meta);
                    // The receiver lives until the scope ends.
                    let _ = stats_tx.send(result);
                });
            }
        });
        drop(stats_tx);

        let mut workers = Vec::with_capacity(self.num_workers);
        let mut tasks_executed = 0usize;
        let mut time_by_kind: Vec<(TaskKind, Duration)> = Vec::new();
        while let Ok((times, executed, kinds)) = stats_rx.recv() {
            workers.push(times);
            tasks_executed += executed;
            for (kind, dur) in kinds {
                if let Some(slot) = time_by_kind.iter_mut().find(|(k, _)| *k == kind) {
                    slot.1 += dur;
                } else {
                    time_by_kind.push((kind, dur));
                }
            }
        }

        RunStats {
            elapsed: started.elapsed(),
            tasks_executed,
            workers,
            time_by_kind,
        }
    }
}

type WorkerResult = (StateTimes, usize, Vec<(TaskKind, Duration)>);

/// A task body moved out of the graph, awaiting execution by a worker.
type TaskBody = Box<dyn FnOnce() + Send>;

/// Charges the wall time since `*mark` to `bucket` and advances the mark.
fn charge(bucket: &mut Duration, mark: &mut Instant) {
    let now = Instant::now();
    *bucket += now.saturating_duration_since(*mark);
    *mark = now;
}

fn worker_loop(
    _worker_index: usize,
    scheduler: &Scheduler,
    bodies: &Mutex<Vec<Option<TaskBody>>>,
    meta: &[(Priority, TaskKind, Vec<TaskId>)],
) -> WorkerResult {
    let mut times = StateTimes::default();
    let mut executed = 0usize;
    let mut by_kind: Vec<(TaskKind, Duration)> = Vec::new();
    let mut mark = Instant::now();

    loop {
        // --- scheduler section (runtime state): find a ready task ---
        let task = {
            let mut state = scheduler.state.lock();
            loop {
                if let Some(t) = state.ready.pop() {
                    break Some(t);
                }
                if state.pending == 0 || state.shutdown {
                    state.shutdown = true;
                    scheduler.work_available.notify_all();
                    break None;
                }
                // --- idle state: wait for work ---
                charge(&mut times.runtime, &mut mark);
                scheduler.work_available.wait(&mut state);
                charge(&mut times.idle, &mut mark);
            }
        };
        let Some(task) = task else {
            charge(&mut times.runtime, &mut mark);
            return (times, executed, by_kind);
        };
        let body = {
            let mut bodies = bodies.lock();
            bodies[task.id.0].take()
        };
        charge(&mut times.runtime, &mut mark);

        // --- useful state: run the task body ---
        if let Some(body) = body {
            body();
            let before = times.useful;
            charge(&mut times.useful, &mut mark);
            let dur = times.useful - before;
            executed += 1;
            let kind = meta[task.id.0].1;
            if let Some(slot) = by_kind.iter_mut().find(|(k, _)| *k == kind) {
                slot.1 += dur;
            } else {
                by_kind.push((kind, dur));
            }
        }

        // --- scheduler section: release dependents ---
        {
            let mut state = scheduler.state.lock();
            state.pending -= 1;
            for dep in &meta[task.id.0].2 {
                state.remaining_predecessors[dep.0] -= 1;
                if state.remaining_predecessors[dep.0] == 0 {
                    let sequence = state.next_sequence;
                    state.next_sequence += 1;
                    state.ready.push(ReadyTask {
                        priority: meta[dep.0].0,
                        sequence,
                        id: *dep,
                    });
                    scheduler.work_available.notify_one();
                }
            }
            if state.pending == 0 {
                state.shutdown = true;
                scheduler.work_available.notify_all();
            }
        }
        charge(&mut times.runtime, &mut mark);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, RegionId};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn empty_graph_runs_without_work() {
        let exec = Executor::new(2);
        let stats = exec.run(TaskGraph::new());
        assert_eq!(stats.tasks_executed, 0);
    }

    #[test]
    fn all_tasks_execute_exactly_once() {
        let exec = Executor::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let mut graph = TaskGraph::new();
        for i in 0..64u64 {
            let counter = Arc::clone(&counter);
            graph.add_compute(format!("t{i}"), &[Access::write(RegionId(i))], move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        let stats = exec.run(graph);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(stats.tasks_executed, 64);
        assert_eq!(stats.workers.len(), 4);
    }

    #[test]
    fn dependencies_order_execution() {
        let exec = Executor::new(4);
        let log = Arc::new(StdMutex::new(Vec::new()));
        let mut graph = TaskGraph::new();
        let region = RegionId(1);
        for step in 0..8usize {
            let log = Arc::clone(&log);
            graph.add_compute(
                format!("step{step}"),
                &[Access::read_write(region)],
                move || log.lock().expect("not poisoned").push(step),
            );
        }
        exec.run(graph);
        let log = log.lock().expect("not poisoned");
        assert_eq!(*log, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn diamond_dependency_executes_join_last() {
        let exec = Executor::new(3);
        let log = Arc::new(StdMutex::new(Vec::new()));
        let mut graph = TaskGraph::new();
        let push = |log: &Arc<StdMutex<Vec<&'static str>>>, name: &'static str| {
            let log = Arc::clone(log);
            move || log.lock().expect("not poisoned").push(name)
        };
        graph.add_compute("src", &[Access::write(RegionId(1))], push(&log, "src"));
        graph.add_compute(
            "left",
            &[Access::read(RegionId(1)), Access::write(RegionId(2))],
            push(&log, "left"),
        );
        graph.add_compute(
            "right",
            &[Access::read(RegionId(1)), Access::write(RegionId(3))],
            push(&log, "right"),
        );
        graph.add_compute(
            "join",
            &[Access::read(RegionId(2)), Access::read(RegionId(3))],
            push(&log, "join"),
        );
        exec.run(graph);
        let log = log.lock().expect("not poisoned");
        assert_eq!(log.len(), 4);
        assert_eq!(log[0], "src");
        assert_eq!(log[3], "join");
    }

    #[test]
    fn priorities_pick_high_priority_tasks_first() {
        // One worker, several independent ready tasks: execution order must
        // follow priority (reduction before compute before low-priority
        // recovery), which is the mechanism AFEIR relies on.
        let exec = Executor::new(1);
        let log = Arc::new(StdMutex::new(Vec::new()));
        let mut graph = TaskGraph::new();
        let push = |log: &Arc<StdMutex<Vec<&'static str>>>, name: &'static str| {
            let log = Arc::clone(log);
            move || log.lock().expect("not poisoned").push(name)
        };
        graph.add_task(
            "recovery",
            TaskKind::Recovery,
            Priority::RECOVERY_LOW,
            &[Access::write(RegionId(1))],
            push(&log, "recovery"),
        );
        graph.add_task(
            "compute",
            TaskKind::Compute,
            Priority::COMPUTE,
            &[Access::write(RegionId(2))],
            push(&log, "compute"),
        );
        graph.add_task(
            "reduction",
            TaskKind::Reduction,
            Priority::REDUCTION,
            &[Access::write(RegionId(3))],
            push(&log, "reduction"),
        );
        let stats = exec.run(graph);
        let log = log.lock().expect("not poisoned");
        assert_eq!(*log, vec!["reduction", "compute", "recovery"]);
        assert_eq!(stats.tasks_executed, 3);
    }

    #[test]
    fn stats_track_useful_time_and_kinds() {
        let exec = Executor::new(2);
        let mut graph = TaskGraph::new();
        graph.add_task(
            "sleep",
            TaskKind::Compute,
            Priority::COMPUTE,
            &[Access::write(RegionId(1))],
            || std::thread::sleep(Duration::from_millis(5)),
        );
        graph.add_task(
            "sleep2",
            TaskKind::Recovery,
            Priority::RECOVERY_LOW,
            &[Access::write(RegionId(2))],
            || std::thread::sleep(Duration::from_millis(2)),
        );
        let stats = exec.run(graph);
        assert!(stats.total_useful() >= Duration::from_millis(6));
        assert!(stats.time_for_kind(TaskKind::Compute) >= Duration::from_millis(4));
        assert!(stats.time_for_kind(TaskKind::Recovery) >= Duration::from_millis(1));
        let b = stats.breakdown();
        assert!(b.useful_fraction > 0.0);
    }

    #[test]
    fn parallel_speedup_on_independent_tasks() {
        // 8 independent 4 ms tasks: 4 workers should finish in well under the
        // serial 32 ms (allowing generous slack for CI noise).
        let mut graph = TaskGraph::new();
        for i in 0..8u64 {
            graph.add_compute(format!("t{i}"), &[Access::write(RegionId(i))], || {
                std::thread::sleep(Duration::from_millis(4))
            });
        }
        let stats = Executor::new(4).run(graph);
        assert!(
            stats.elapsed < Duration::from_millis(28),
            "no parallelism observed: {:?}",
            stats.elapsed
        );
    }
}
