//! # feir-runtime
//!
//! A small OmpSs-like task-dataflow runtime: the substrate the paper relies on
//! to (a) split the solver into strip-mined tasks whose dependences are
//! derived from data-region annotations, (b) schedule them asynchronously over
//! a worker pool with priorities, and (c) account for where worker time goes
//! (useful work, runtime overhead, idling on load imbalance) — the three
//! states reported in Table 3 of the paper.
//!
//! The design follows the OmpSs model described in Section 3.3 of the paper:
//!
//! * a *task* is a unit of serial work annotated with the data regions it
//!   reads and writes ([`Access`]);
//! * dependences are inferred from program order: read-after-write,
//!   write-after-read and write-after-write conflicts on overlapping regions
//!   create edges ([`TaskGraph`]);
//! * ready tasks are executed by a pool of workers, highest
//!   [`Priority`] first ([`Executor`]). Reduction tasks get higher priority
//!   than compute, and AFEIR-style recovery tasks get lower priority so they
//!   are overlapped with reductions exactly as in Figure 2(b) of the paper;
//! * the executor reports per-worker [`StateTimes`] so experiments can
//!   reproduce the imbalance / runtime / useful breakdown of Table 3.

#![warn(missing_docs)]

pub mod executor;
pub mod graph;
pub mod task;

/// Worker-state accounting now lives in [`mod@feir_trace::metrics`] — the
/// workspace's single counter/histogram home; re-exported here so runtime
/// consumers keep their import paths.
pub mod stats {
    pub use feir_trace::metrics::{StateBreakdown, StateTimes};
}

pub use executor::{Executor, RunStats};
pub use graph::{Access, AccessMode, RegionId, TaskGraph, TaskId};
pub use stats::{StateBreakdown, StateTimes};
pub use task::{Priority, TaskKind};
