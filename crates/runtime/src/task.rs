//! Task metadata: priorities and kinds.

/// Scheduling priority of a task. Higher values are scheduled first among the
/// ready tasks.
///
/// The paper's AFEIR scheme relies on exactly this mechanism: recovery tasks
/// are released together with the reduction tasks but carry a *lower*
/// priority, "as to start all reduction tasks first" (Section 3.3.2), so the
/// recovery is overlapped with the reduction instead of delaying it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub i32);

impl Priority {
    /// Priority used by scalar reduction tasks (highest).
    pub const REDUCTION: Priority = Priority(100);
    /// Default priority of strip-mined compute tasks.
    pub const COMPUTE: Priority = Priority(0);
    /// Priority of overlapped (AFEIR) recovery tasks: below compute and
    /// reductions so they fill idle cycles.
    pub const RECOVERY_LOW: Priority = Priority(-10);
    /// Priority of critical-path (FEIR) recovery tasks.
    pub const RECOVERY_CRITICAL: Priority = Priority(50);
}

impl Default for Priority {
    fn default() -> Self {
        Priority::COMPUTE
    }
}

/// Broad classification of tasks, used for reporting and for the state-time
/// accounting (recovery-task time is runtime overhead from the solver's point
/// of view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Strip-mined solver computation (SpMV block, axpy block, …).
    Compute,
    /// Scalar reduction producing a value every other task depends on.
    Reduction,
    /// Recovery task (FEIR / AFEIR green tasks in Figure 1(b)).
    Recovery,
    /// Communication (halo exchange, allreduce) in distributed runs.
    Communication,
    /// Anything else (checkpoint writing, bookkeeping).
    Other,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering_matches_paper_scheme() {
        assert!(Priority::REDUCTION > Priority::RECOVERY_CRITICAL);
        assert!(Priority::RECOVERY_CRITICAL > Priority::COMPUTE);
        assert!(Priority::COMPUTE > Priority::RECOVERY_LOW);
        assert_eq!(Priority::default(), Priority::COMPUTE);
    }

    #[test]
    fn task_kind_is_hashable_and_comparable() {
        use std::collections::HashSet;
        let kinds: HashSet<TaskKind> = [
            TaskKind::Compute,
            TaskKind::Reduction,
            TaskKind::Recovery,
            TaskKind::Communication,
            TaskKind::Other,
        ]
        .into_iter()
        .collect();
        assert_eq!(kinds.len(), 5);
    }
}
