//! Worker state-time accounting.
//!
//! Table 3 of the paper breaks down the overhead of FEIR/AFEIR into the
//! increase of time spent in three states while the solver runs:
//!
//! * **useful** — executing solver tasks,
//! * **runtime** — creating and scheduling tasks (runtime-system work),
//! * **imbalance** — idling because no ready task is available.
//!
//! The executor records these three buckets per worker; this module holds the
//! plain-data accumulation types and the aggregation used to print the table.

use std::time::Duration;

/// Time one worker spent in each of the three states.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StateTimes {
    /// Time spent executing task bodies.
    pub useful: Duration,
    /// Time spent inside the scheduler (popping tasks, releasing dependents).
    pub runtime: Duration,
    /// Time spent idle waiting for work (load imbalance).
    pub idle: Duration,
}

impl StateTimes {
    /// Total tracked time.
    pub fn total(&self) -> Duration {
        self.useful + self.runtime + self.idle
    }

    /// Adds another accumulation into this one.
    pub fn accumulate(&mut self, other: &StateTimes) {
        self.useful += other.useful;
        self.runtime += other.runtime;
        self.idle += other.idle;
    }
}

/// Aggregated breakdown over all workers, expressed as fractions of the total.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StateBreakdown {
    /// Fraction of worker time doing useful work.
    pub useful_fraction: f64,
    /// Fraction of worker time doing runtime work.
    pub runtime_fraction: f64,
    /// Fraction of worker time idling.
    pub idle_fraction: f64,
}

impl StateBreakdown {
    /// Aggregates per-worker times into global fractions.
    pub fn from_workers(workers: &[StateTimes]) -> Self {
        let mut sum = StateTimes::default();
        for w in workers {
            sum.accumulate(w);
        }
        let total = sum.total().as_secs_f64();
        if total <= 0.0 {
            return Self::default();
        }
        Self {
            useful_fraction: sum.useful.as_secs_f64() / total,
            runtime_fraction: sum.runtime.as_secs_f64() / total,
            idle_fraction: sum.idle.as_secs_f64() / total,
        }
    }

    /// Percentage-point increase of each state relative to a baseline run —
    /// the quantity reported in Table 3 ("increase of time spent per state").
    ///
    /// Returns `(imbalance, runtime, useful)` increases in percent, matching
    /// the column order of the paper's table.
    pub fn increase_over(&self, baseline: &StateBreakdown) -> (f64, f64, f64) {
        let rel = |ours: f64, base: f64| {
            if base <= 0.0 {
                if ours <= 0.0 {
                    0.0
                } else {
                    100.0
                }
            } else {
                (ours - base) / base * 100.0
            }
        };
        (
            rel(self.idle_fraction, baseline.idle_fraction),
            rel(self.runtime_fraction, baseline.runtime_fraction),
            rel(self.useful_fraction, baseline.useful_fraction),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_accumulation() {
        let mut a = StateTimes {
            useful: Duration::from_millis(10),
            runtime: Duration::from_millis(2),
            idle: Duration::from_millis(3),
        };
        assert_eq!(a.total(), Duration::from_millis(15));
        let b = StateTimes {
            useful: Duration::from_millis(5),
            runtime: Duration::from_millis(1),
            idle: Duration::from_millis(0),
        };
        a.accumulate(&b);
        assert_eq!(a.useful, Duration::from_millis(15));
        assert_eq!(a.total(), Duration::from_millis(21));
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let workers = vec![
            StateTimes {
                useful: Duration::from_millis(80),
                runtime: Duration::from_millis(10),
                idle: Duration::from_millis(10),
            },
            StateTimes {
                useful: Duration::from_millis(60),
                runtime: Duration::from_millis(20),
                idle: Duration::from_millis(20),
            },
        ];
        let b = StateBreakdown::from_workers(&workers);
        let sum = b.useful_fraction + b.runtime_fraction + b.idle_fraction;
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(b.useful_fraction > 0.6);
    }

    #[test]
    fn empty_worker_list_gives_zero_breakdown() {
        let b = StateBreakdown::from_workers(&[]);
        assert_eq!(b, StateBreakdown::default());
    }

    #[test]
    fn increase_over_baseline() {
        let baseline = StateBreakdown {
            useful_fraction: 0.8,
            runtime_fraction: 0.1,
            idle_fraction: 0.1,
        };
        let with_recovery = StateBreakdown {
            useful_fraction: 0.82,
            runtime_fraction: 0.11,
            idle_fraction: 0.125,
        };
        let (imbalance, runtime, useful) = with_recovery.increase_over(&baseline);
        assert!((imbalance - 25.0).abs() < 1e-9);
        assert!((runtime - 10.0).abs() < 1e-9);
        assert!((useful - 2.5).abs() < 1e-9);
    }

    #[test]
    fn increase_from_zero_baseline_is_capped() {
        let baseline = StateBreakdown::default();
        let other = StateBreakdown {
            useful_fraction: 0.5,
            runtime_fraction: 0.0,
            idle_fraction: 0.5,
        };
        let (imbalance, runtime, useful) = other.increase_over(&baseline);
        assert_eq!(runtime, 0.0);
        assert_eq!(imbalance, 100.0);
        assert_eq!(useful, 100.0);
    }
}
