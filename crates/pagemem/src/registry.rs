//! Atomic per-page poison/lost state for every protected vector.
//!
//! The registry plays the role of the machine-check registers plus the OS view
//! of retired pages: the fault injector flips pages to *poisoned* from its own
//! thread, solver tasks discover the loss on access (the transition to *lost*
//! corresponds to the paper's caught `SIGBUS`), and recovery code marks pages
//! healthy again once the data has been reconstructed.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

use parking_lot::RwLock;

/// Identifier of a protected vector inside a [`PageRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VectorId(pub usize);

/// State of one protected memory page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageStatus {
    /// The page holds valid data.
    Healthy,
    /// A DUE has been injected but the application has not touched the page
    /// yet (the OS "poisoned page" state).
    Poisoned,
    /// The loss has been observed by the application; the backing data has
    /// been replaced by a fresh blank page and awaits recovery.
    Lost,
}

const HEALTHY: u8 = 0;
const POISONED: u8 = 1;
const LOST: u8 = 2;

/// Outcome of touching a page through [`PageRegistry::on_access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The page is healthy; proceed normally.
    Ok,
    /// The access discovered a poisoned page (this caller "received the
    /// SIGBUS"): the caller must blank the data and handle the loss.
    FaultDiscovered,
    /// The page was already known to be lost (someone else discovered it and
    /// the data is already blank) and has not been recovered yet.
    AlreadyLost,
}

#[derive(Debug)]
struct VectorState {
    name: String,
    pages: Vec<AtomicU8>,
}

/// Registry of the poison state of every page of every protected vector.
///
/// All page-state transitions are lock-free; the vector table itself is only
/// locked on registration (which happens before the solver starts).
#[derive(Debug)]
pub struct PageRegistry {
    vectors: RwLock<Vec<VectorState>>,
    injected: AtomicUsize,
    discovered: AtomicUsize,
    recovered: AtomicUsize,
}

impl Default for PageRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl PageRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            vectors: RwLock::new(Vec::new()),
            injected: AtomicUsize::new(0),
            discovered: AtomicUsize::new(0),
            recovered: AtomicUsize::new(0),
        }
    }

    /// Registers a protected vector with `num_pages` pages and returns its id.
    pub fn register(&self, name: impl Into<String>, num_pages: usize) -> VectorId {
        let mut vectors = self.vectors.write();
        let id = VectorId(vectors.len());
        vectors.push(VectorState {
            name: name.into(),
            pages: (0..num_pages).map(|_| AtomicU8::new(HEALTHY)).collect(),
        });
        id
    }

    /// Number of registered vectors.
    pub fn num_vectors(&self) -> usize {
        self.vectors.read().len()
    }

    /// Name of a registered vector.
    pub fn name(&self, v: VectorId) -> String {
        self.vectors.read()[v.0].name.clone()
    }

    /// Number of pages of a registered vector.
    pub fn num_pages(&self, v: VectorId) -> usize {
        self.vectors.read()[v.0].pages.len()
    }

    /// Total number of registered pages across all vectors.
    pub fn total_pages(&self) -> usize {
        self.vectors.read().iter().map(|v| v.pages.len()).sum()
    }

    /// Marks a page poisoned (the hardware/OS detected a DUE there).
    ///
    /// Returns `true` if the page was healthy and is now poisoned, `false` if
    /// it was already poisoned or lost (the injection is then a no-op, as a
    /// second DUE on an already-retired page would be).
    pub fn inject(&self, v: VectorId, page: usize) -> bool {
        let vectors = self.vectors.read();
        let slot = &vectors[v.0].pages[page];
        let swapped = slot
            .compare_exchange(HEALTHY, POISONED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if swapped {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        swapped
    }

    /// Maps a flat page index in `[0, total_pages)` to a concrete
    /// `(vector, page)` target. Used by the injector to pick pages uniformly
    /// over all protected data, as the paper does.
    pub fn flat_index_to_target(&self, flat: usize) -> Option<(VectorId, usize)> {
        let vectors = self.vectors.read();
        let mut remaining = flat;
        for (i, v) in vectors.iter().enumerate() {
            if remaining < v.pages.len() {
                return Some((VectorId(i), remaining));
            }
            remaining -= v.pages.len();
        }
        None
    }

    /// Reads the status of a page without changing it (the solver never does
    /// this — it corresponds to the OS scrubber's view — but recovery tasks
    /// and tests do).
    pub fn probe(&self, v: VectorId, page: usize) -> PageStatus {
        let vectors = self.vectors.read();
        match vectors[v.0].pages[page].load(Ordering::Acquire) {
            POISONED => PageStatus::Poisoned,
            LOST => PageStatus::Lost,
            _ => PageStatus::Healthy,
        }
    }

    /// Touches a page on behalf of the application.
    ///
    /// A poisoned page transitions to lost and the caller is told it just
    /// discovered the fault (it must blank the data, mimicking the fresh
    /// `mmap` of the paper's signal handler). Exactly one caller receives
    /// [`AccessOutcome::FaultDiscovered`] per loss.
    pub fn on_access(&self, v: VectorId, page: usize) -> AccessOutcome {
        let vectors = self.vectors.read();
        let slot = &vectors[v.0].pages[page];
        match slot.load(Ordering::Acquire) {
            HEALTHY => AccessOutcome::Ok,
            LOST => AccessOutcome::AlreadyLost,
            _ => {
                if slot
                    .compare_exchange(POISONED, LOST, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    self.discovered.fetch_add(1, Ordering::Relaxed);
                    AccessOutcome::FaultDiscovered
                } else {
                    AccessOutcome::AlreadyLost
                }
            }
        }
    }

    /// Marks a page healthy again after its data has been reconstructed.
    pub fn mark_recovered(&self, v: VectorId, page: usize) {
        let vectors = self.vectors.read();
        let prev = vectors[v.0].pages[page].swap(HEALTHY, Ordering::AcqRel);
        if prev != HEALTHY {
            self.recovered.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Indices of pages of `v` currently in the lost state.
    pub fn lost_pages(&self, v: VectorId) -> Vec<usize> {
        let vectors = self.vectors.read();
        vectors[v.0]
            .pages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.load(Ordering::Acquire) == LOST)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of pages of `v` currently poisoned (injected but undiscovered).
    pub fn poisoned_pages(&self, v: VectorId) -> Vec<usize> {
        let vectors = self.vectors.read();
        vectors[v.0]
            .pages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.load(Ordering::Acquire) == POISONED)
            .map(|(i, _)| i)
            .collect()
    }

    /// True if no page of any vector is poisoned or lost.
    pub fn all_healthy(&self) -> bool {
        let vectors = self.vectors.read();
        vectors
            .iter()
            .all(|v| v.pages.iter().all(|p| p.load(Ordering::Acquire) == HEALTHY))
    }

    /// Resets every page to healthy and zeroes the counters. Used between
    /// repetitions of an experiment.
    pub fn reset(&self) {
        let vectors = self.vectors.read();
        for v in vectors.iter() {
            for p in &v.pages {
                p.store(HEALTHY, Ordering::Release);
            }
        }
        self.injected.store(0, Ordering::Relaxed);
        self.discovered.store(0, Ordering::Relaxed);
        self.recovered.store(0, Ordering::Relaxed);
    }

    /// Number of injections that landed on a healthy page.
    pub fn injected_count(&self) -> usize {
        self.injected.load(Ordering::Relaxed)
    }

    /// Number of faults discovered by the application.
    pub fn discovered_count(&self) -> usize {
        self.discovered.load(Ordering::Relaxed)
    }

    /// Number of pages marked recovered.
    pub fn recovered_count(&self) -> usize {
        self.recovered.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn register_and_probe() {
        let reg = PageRegistry::new();
        let x = reg.register("x", 4);
        let g = reg.register("g", 2);
        assert_eq!(reg.num_vectors(), 2);
        assert_eq!(reg.num_pages(x), 4);
        assert_eq!(reg.num_pages(g), 2);
        assert_eq!(reg.total_pages(), 6);
        assert_eq!(reg.name(g), "g");
        assert_eq!(reg.probe(x, 0), PageStatus::Healthy);
        assert!(reg.all_healthy());
    }

    #[test]
    fn inject_discover_recover_lifecycle() {
        let reg = PageRegistry::new();
        let x = reg.register("x", 3);
        assert!(reg.inject(x, 1));
        assert_eq!(reg.probe(x, 1), PageStatus::Poisoned);
        assert_eq!(reg.poisoned_pages(x), vec![1]);
        // Double injection on the same page is a no-op.
        assert!(!reg.inject(x, 1));
        assert_eq!(reg.injected_count(), 1);

        // First access discovers the fault, later accesses see AlreadyLost.
        assert_eq!(reg.on_access(x, 1), AccessOutcome::FaultDiscovered);
        assert_eq!(reg.on_access(x, 1), AccessOutcome::AlreadyLost);
        assert_eq!(reg.probe(x, 1), PageStatus::Lost);
        assert_eq!(reg.lost_pages(x), vec![1]);
        assert_eq!(reg.discovered_count(), 1);

        // Healthy pages are unaffected.
        assert_eq!(reg.on_access(x, 0), AccessOutcome::Ok);

        reg.mark_recovered(x, 1);
        assert_eq!(reg.probe(x, 1), PageStatus::Healthy);
        assert_eq!(reg.recovered_count(), 1);
        assert!(reg.all_healthy());
    }

    #[test]
    fn flat_index_maps_across_vectors() {
        let reg = PageRegistry::new();
        let a = reg.register("a", 3);
        let b = reg.register("b", 2);
        assert_eq!(reg.flat_index_to_target(0), Some((a, 0)));
        assert_eq!(reg.flat_index_to_target(2), Some((a, 2)));
        assert_eq!(reg.flat_index_to_target(3), Some((b, 0)));
        assert_eq!(reg.flat_index_to_target(4), Some((b, 1)));
        assert_eq!(reg.flat_index_to_target(5), None);
    }

    #[test]
    fn reset_clears_everything() {
        let reg = PageRegistry::new();
        let x = reg.register("x", 2);
        reg.inject(x, 0);
        reg.on_access(x, 0);
        reg.reset();
        assert!(reg.all_healthy());
        assert_eq!(reg.injected_count(), 0);
        assert_eq!(reg.discovered_count(), 0);
    }

    #[test]
    fn exactly_one_thread_discovers_each_fault() {
        let reg = Arc::new(PageRegistry::new());
        let x = reg.register("x", 1);
        reg.inject(x, 0);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                matches!(reg.on_access(x, 0), AccessOutcome::FaultDiscovered)
            }));
        }
        let discoveries: usize = handles
            .into_iter()
            .map(|h| usize::from(h.join().expect("thread must not panic")))
            .sum();
        assert_eq!(discoveries, 1, "exactly one thread must observe the SIGBUS");
        assert_eq!(reg.discovered_count(), 1);
    }

    #[test]
    fn concurrent_injections_count_once_per_page() {
        let reg = Arc::new(PageRegistry::new());
        let x = reg.register("x", 16);
        let mut handles = Vec::new();
        for t in 0..4 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for p in 0..16 {
                    // All threads try to poison every page.
                    reg.inject(x, (p + t) % 16);
                }
            }));
        }
        for h in handles {
            h.join().expect("thread must not panic");
        }
        assert_eq!(reg.injected_count(), 16);
        assert_eq!(reg.poisoned_pages(x).len(), 16);
    }
}
