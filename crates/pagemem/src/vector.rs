//! Protected, page-partitioned vectors with guarded access.
//!
//! A [`PagedVector`] couples a plain `Vec<f64>` with its entry in the
//! [`PageRegistry`]. Accessing a page *through the guard API* performs the
//! poisoned→lost transition that corresponds to the application catching the
//! OS `SIGBUS`: the data of the page is replaced by zeros (the fresh blank
//! page mapped by the signal handler in the paper) and the caller is informed
//! through a [`PageFault`] so the solver-level logic can skip / recover.
//!
//! Plain (unguarded) slice access is also available for constant data and for
//! code paths that have already performed the check.

use std::sync::Arc;

use feir_sparse::blocking::BlockPartition;

use crate::registry::{AccessOutcome, PageRegistry, VectorId};

/// Information about a fault observed while accessing a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFault {
    /// The vector in which the fault was observed.
    pub vector: VectorId,
    /// The page index within the vector.
    pub page: usize,
    /// True if this access is the one that discovered the fault (received the
    /// simulated SIGBUS); false if the page was already known to be lost.
    pub first_discovery: bool,
}

/// Result of a guarded page access.
#[derive(Debug, PartialEq)]
pub enum PageAccess<'a> {
    /// The page is healthy; the slice holds valid data.
    Clean(&'a mut [f64]),
    /// The page was lost; the slice has been blanked (all zeros) and the fault
    /// details are reported so the caller can skip or trigger recovery.
    Faulted(&'a mut [f64], PageFault),
}

/// A protected vector: data plus page-state bookkeeping.
#[derive(Debug, Clone)]
pub struct PagedVector {
    id: VectorId,
    registry: Arc<PageRegistry>,
    partition: BlockPartition,
    data: Vec<f64>,
}

impl PagedVector {
    /// Creates a protected vector of length `n` initialised to zero and
    /// registers it with page-sized blocks.
    pub fn zeros(name: &str, n: usize, registry: Arc<PageRegistry>) -> Self {
        Self::from_vec(name, vec![0.0; n], registry)
    }

    /// Creates a protected vector from existing data.
    pub fn from_vec(name: &str, data: Vec<f64>, registry: Arc<PageRegistry>) -> Self {
        let partition = BlockPartition::pages(data.len());
        let id = registry.register(name, partition.num_blocks());
        Self {
            id,
            registry,
            partition,
            data,
        }
    }

    /// Creates a protected vector with an explicit block (page) size, useful
    /// in tests that want small pages.
    pub fn with_block_size(
        name: &str,
        data: Vec<f64>,
        block_size: usize,
        registry: Arc<PageRegistry>,
    ) -> Self {
        let partition = BlockPartition::new(data.len(), block_size);
        let id = registry.register(name, partition.num_blocks());
        Self {
            id,
            registry,
            partition,
            data,
        }
    }

    /// Registry identifier of this vector.
    pub fn id(&self) -> VectorId {
        self.id
    }

    /// The page partition of this vector.
    pub fn partition(&self) -> BlockPartition {
        self.partition
    }

    /// Length in elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.partition.num_blocks()
    }

    /// Unguarded read-only view of the whole vector.
    ///
    /// Only valid for data known to be healthy (e.g. after recovery has run,
    /// or for measuring convergence in the experiment driver).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Unguarded mutable view of the whole vector.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning its data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Read-only view of one page without touching the fault state.
    pub fn page_slice(&self, page: usize) -> &[f64] {
        &self.data[self.partition.range(page)]
    }

    /// Mutable view of one page without touching the fault state.
    pub fn page_slice_mut(&mut self, page: usize) -> &mut [f64] {
        let range = self.partition.range(page);
        &mut self.data[range]
    }

    /// Guarded access to one page.
    ///
    /// If the page was poisoned, it transitions to lost, its data is zeroed
    /// (fresh blank page) and the access reports the fault. The transition is
    /// performed exactly once even under concurrent access; subsequent
    /// accesses of the still-lost page also report a fault (with
    /// `first_discovery == false`) and see the blank data.
    pub fn access_page_mut(&mut self, page: usize) -> PageAccess<'_> {
        let outcome = self.registry.on_access(self.id, page);
        let range = self.partition.range(page);
        match outcome {
            AccessOutcome::Ok => PageAccess::Clean(&mut self.data[range]),
            AccessOutcome::FaultDiscovered => {
                for v in &mut self.data[range.clone()] {
                    *v = 0.0;
                }
                PageAccess::Faulted(
                    &mut self.data[range],
                    PageFault {
                        vector: self.id,
                        page,
                        first_discovery: true,
                    },
                )
            }
            AccessOutcome::AlreadyLost => PageAccess::Faulted(
                &mut self.data[range],
                PageFault {
                    vector: self.id,
                    page,
                    first_discovery: false,
                },
            ),
        }
    }

    /// Guarded check of a page used by *readers*: reports (and materialises)
    /// a fault exactly like [`Self::access_page_mut`] but without handing out
    /// a mutable slice. Returns `None` when the page is healthy.
    pub fn check_page(&mut self, page: usize) -> Option<PageFault> {
        match self.access_page_mut(page) {
            PageAccess::Clean(_) => None,
            PageAccess::Faulted(_, fault) => Some(fault),
        }
    }

    /// Writes `values` into `page` and marks it healthy in the registry —
    /// this is what a recovery does after reconstructing the data.
    pub fn restore_page(&mut self, page: usize, values: &[f64]) {
        let range = self.partition.range(page);
        assert_eq!(values.len(), range.len(), "restore_page length mismatch");
        self.data[range].copy_from_slice(values);
        self.registry.mark_recovered(self.id, page);
    }

    /// Marks a page healthy without changing data (used when the blank page
    /// happens to be the correct content, e.g. trivial recovery).
    pub fn mark_page_recovered(&mut self, page: usize) {
        self.registry.mark_recovered(self.id, page);
    }

    /// Pages of this vector currently lost (discovered but not recovered).
    pub fn lost_pages(&self) -> Vec<usize> {
        self.registry.lost_pages(self.id)
    }

    /// Pages of this vector currently poisoned (injected, not yet observed).
    pub fn poisoned_pages(&self) -> Vec<usize> {
        self.registry.poisoned_pages(self.id)
    }

    /// Scans every page, materialising any poisoned page into the lost state
    /// (blanking its data). Returns all pages that are lost after the scan.
    ///
    /// This mirrors the paper's FEIR recovery tasks, which run after all
    /// compute tasks and therefore observe every error discovered so far.
    pub fn sweep_faults(&mut self) -> Vec<usize> {
        let mut lost = Vec::new();
        for page in 0..self.num_pages() {
            if self.check_page(page).is_some() {
                lost.push(page);
            }
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Arc<PageRegistry> {
        Arc::new(PageRegistry::new())
    }

    #[test]
    fn construction_and_basic_views() {
        let reg = registry();
        let v = PagedVector::from_vec("x", (0..1000).map(|i| i as f64).collect(), reg.clone());
        assert_eq!(v.len(), 1000);
        assert_eq!(v.num_pages(), 2);
        assert_eq!(v.page_slice(0).len(), 512);
        assert_eq!(v.page_slice(1).len(), 488);
        assert_eq!(v.as_slice()[999], 999.0);
        assert_eq!(reg.num_vectors(), 1);
    }

    #[test]
    fn clean_access_leaves_data_untouched() {
        let reg = registry();
        let mut v = PagedVector::from_vec("x", vec![7.0; 100], reg);
        match v.access_page_mut(0) {
            PageAccess::Clean(slice) => assert!(slice.iter().all(|&x| x == 7.0)),
            PageAccess::Faulted(..) => panic!("unexpected fault"),
        }
    }

    #[test]
    fn fault_is_discovered_once_and_page_is_blanked() {
        let reg = registry();
        let mut v = PagedVector::with_block_size("x", vec![3.0; 64], 16, reg.clone());
        assert!(reg.inject(v.id(), 2));
        // Untouched pages still hold data.
        assert_eq!(v.page_slice(2)[0], 3.0);
        match v.access_page_mut(2) {
            PageAccess::Faulted(slice, fault) => {
                assert!(fault.first_discovery);
                assert_eq!(fault.page, 2);
                assert!(slice.iter().all(|&x| x == 0.0));
            }
            PageAccess::Clean(_) => panic!("expected a fault"),
        }
        // Second access: still faulted, not a first discovery.
        match v.access_page_mut(2) {
            PageAccess::Faulted(_, fault) => assert!(!fault.first_discovery),
            PageAccess::Clean(_) => panic!("page must stay lost until recovered"),
        }
        assert_eq!(v.lost_pages(), vec![2]);
    }

    #[test]
    fn restore_page_heals_and_rewrites() {
        let reg = registry();
        let mut v = PagedVector::with_block_size("x", vec![1.0; 32], 8, reg.clone());
        reg.inject(v.id(), 1);
        assert!(v.check_page(1).is_some());
        let replacement = vec![9.0; 8];
        v.restore_page(1, &replacement);
        assert!(v.lost_pages().is_empty());
        match v.access_page_mut(1) {
            PageAccess::Clean(slice) => assert!(slice.iter().all(|&x| x == 9.0)),
            PageAccess::Faulted(..) => panic!("page should be healthy after restore"),
        }
    }

    #[test]
    fn sweep_faults_materialises_all_poisoned_pages() {
        let reg = registry();
        let mut v = PagedVector::with_block_size("x", vec![5.0; 40], 10, reg.clone());
        reg.inject(v.id(), 0);
        reg.inject(v.id(), 3);
        let lost = v.sweep_faults();
        assert_eq!(lost, vec![0, 3]);
        assert!(v.page_slice(0).iter().all(|&x| x == 0.0));
        assert!(v.page_slice(3).iter().all(|&x| x == 0.0));
        assert!(v.page_slice(1).iter().all(|&x| x == 5.0));
    }

    #[test]
    fn mark_page_recovered_without_rewrite() {
        let reg = registry();
        let mut v = PagedVector::with_block_size("x", vec![1.0; 16], 8, reg.clone());
        reg.inject(v.id(), 0);
        v.check_page(0);
        v.mark_page_recovered(0);
        assert!(v.lost_pages().is_empty());
        // Data stays blank (that is the trivial recovery semantics).
        assert!(v.page_slice(0).iter().all(|&x| x == 0.0));
    }
}
