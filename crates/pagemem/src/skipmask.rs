//! Per-page atomic bitmasks tracking skipped (not-produced) task outputs.
//!
//! Section 3.3.2 of the paper: "*we maintain an atomic bitmask per block of
//! failure granularity, thus per memory page. Each data vector and task output
//! is represented by a bit in this mask. Thus, if a task works on a page `p`
//! of a vector, it can check whether one of its inputs was corrupted or
//! skipped, and if so skip the computation while marking the bitmask with the
//! bit representing the task's output.*"
//!
//! Skipping is what keeps reductions finite: a page whose input was lost
//! contributes nothing instead of accumulating NaN/Inf, and the recovery tasks
//! later recompute exactly the skipped contributions.

use std::sync::atomic::{AtomicU64, Ordering};

/// One atomic 64-bit mask per page; each bit identifies a logical data item
/// (vector or task output) whose page-sized block is currently invalid.
#[derive(Debug)]
pub struct SkipMask {
    masks: Vec<AtomicU64>,
}

impl SkipMask {
    /// Creates a mask set for `num_pages` pages, all clear.
    pub fn new(num_pages: usize) -> Self {
        Self {
            masks: (0..num_pages).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of pages tracked.
    pub fn num_pages(&self) -> usize {
        self.masks.len()
    }

    /// Marks item `bit` of `page` as skipped/invalid.
    ///
    /// # Panics
    /// Panics if `bit >= 64`.
    pub fn set(&self, page: usize, bit: u32) {
        assert!(bit < 64, "SkipMask supports at most 64 items");
        self.masks[page].fetch_or(1 << bit, Ordering::AcqRel);
    }

    /// Clears item `bit` of `page` (its data is valid again).
    pub fn clear(&self, page: usize, bit: u32) {
        assert!(bit < 64, "SkipMask supports at most 64 items");
        self.masks[page].fetch_and(!(1 << bit), Ordering::AcqRel);
    }

    /// True if item `bit` of `page` is currently marked skipped.
    pub fn is_set(&self, page: usize, bit: u32) -> bool {
        assert!(bit < 64, "SkipMask supports at most 64 items");
        self.masks[page].load(Ordering::Acquire) & (1 << bit) != 0
    }

    /// True if *any* of the items in `bits` is marked skipped on `page`.
    /// `bits` is a bit-set (not a bit index).
    pub fn any_of(&self, page: usize, bits: u64) -> bool {
        self.masks[page].load(Ordering::Acquire) & bits != 0
    }

    /// Raw mask of `page`.
    pub fn raw(&self, page: usize) -> u64 {
        self.masks[page].load(Ordering::Acquire)
    }

    /// True if no item is skipped on any page.
    pub fn all_clear(&self) -> bool {
        self.masks.iter().all(|m| m.load(Ordering::Acquire) == 0)
    }

    /// Pages for which any of the items in the `bits` bit-set is skipped.
    pub fn pages_with_any(&self, bits: u64) -> Vec<usize> {
        self.masks
            .iter()
            .enumerate()
            .filter(|(_, m)| m.load(Ordering::Acquire) & bits != 0)
            .map(|(p, _)| p)
            .collect()
    }

    /// Clears every bit of every page.
    pub fn clear_all(&self) {
        for m in &self.masks {
            m.store(0, Ordering::Release);
        }
    }
}

/// Builds the bit-set containing the single item `bit`.
pub const fn bit(bit: u32) -> u64 {
    1 << bit
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_check_clear() {
        let mask = SkipMask::new(4);
        assert!(mask.all_clear());
        mask.set(2, 5);
        assert!(mask.is_set(2, 5));
        assert!(!mask.is_set(2, 4));
        assert!(!mask.is_set(1, 5));
        assert!(mask.any_of(2, bit(5) | bit(9)));
        assert!(!mask.any_of(2, bit(9)));
        assert_eq!(mask.pages_with_any(bit(5)), vec![2]);
        mask.clear(2, 5);
        assert!(mask.all_clear());
    }

    #[test]
    fn clear_all_resets_every_page() {
        let mask = SkipMask::new(3);
        mask.set(0, 0);
        mask.set(1, 1);
        mask.set(2, 63);
        mask.clear_all();
        assert!(mask.all_clear());
    }

    #[test]
    fn raw_exposes_full_bitset() {
        let mask = SkipMask::new(1);
        mask.set(0, 0);
        mask.set(0, 3);
        assert_eq!(mask.raw(0), 0b1001);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn bit_index_out_of_range_panics() {
        let mask = SkipMask::new(1);
        mask.set(0, 64);
    }

    #[test]
    fn concurrent_sets_on_same_page_do_not_lose_bits() {
        let mask = Arc::new(SkipMask::new(1));
        let mut handles = Vec::new();
        for b in 0..32u32 {
            let mask = Arc::clone(&mask);
            handles.push(std::thread::spawn(move || mask.set(0, b)));
        }
        for h in handles {
            h.join().expect("no panic");
        }
        assert_eq!(mask.raw(0), (1u64 << 32) - 1);
    }
}
