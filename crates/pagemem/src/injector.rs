//! Background fault injector.
//!
//! Replicates the paper's error-injection methodology (Section 5.3): errors
//! arrive from a separate thread at times drawn from an exponential
//! distribution parametrized by the Mean Time Between Errors (MTBE), and the
//! affected memory page is selected uniformly at random over all protected
//! pages. A deterministic schedule is also supported for the single-error
//! convergence traces of Figure 3.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::registry::{PageRegistry, VectorId};

/// When and where errors are injected.
#[derive(Debug, Clone)]
pub enum InjectionPlan {
    /// No errors at all (baseline / overhead-only experiments, Table 2).
    None,
    /// Exponentially distributed inter-arrival times with the given mean,
    /// targeting pages uniformly at random (Figure 4 / 5 experiments).
    Exponential {
        /// Mean time between errors.
        mtbe: Duration,
        /// RNG seed so repetitions are reproducible.
        seed: u64,
    },
    /// A fixed schedule of (time after start, flat page index) injections.
    /// A flat index of `usize::MAX` means "pick uniformly at random".
    Scheduled(Vec<(Duration, usize)>),
}

impl InjectionPlan {
    /// Convenience: the paper's normalized error frequency. A frequency of
    /// `n` means `n` expected errors per ideal solve time `tau`.
    pub fn normalized(frequency: f64, ideal_solve_time: Duration, seed: u64) -> Self {
        if frequency <= 0.0 {
            return InjectionPlan::None;
        }
        let mtbe = ideal_solve_time.as_secs_f64() / frequency;
        InjectionPlan::Exponential {
            mtbe: Duration::from_secs_f64(mtbe.max(1e-6)),
            seed,
        }
    }
}

/// One injected error, for post-mortem reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionRecord {
    /// Time since the injector started.
    pub at: Duration,
    /// Target vector.
    pub vector: VectorId,
    /// Target page within the vector.
    pub page: usize,
    /// Whether the page was healthy (injection effective).
    pub effective: bool,
}

/// Summary returned when the injector is stopped.
#[derive(Debug, Clone, Default)]
pub struct InjectionReport {
    /// Every injection attempt in order.
    pub records: Vec<InjectionRecord>,
}

impl InjectionReport {
    /// Number of injections that hit a healthy page.
    pub fn effective_count(&self) -> usize {
        self.records.iter().filter(|r| r.effective).count()
    }
}

/// Handle to the injector thread.
pub struct FaultInjector {
    stop: Arc<AtomicBool>,
    paused: Arc<AtomicBool>,
    records: Arc<Mutex<Vec<InjectionRecord>>>,
    handle: Option<JoinHandle<()>>,
}

impl FaultInjector {
    /// Starts injecting faults into the registry according to `plan`.
    ///
    /// The injector thread wakes up at each scheduled instant, picks the
    /// target page and flips it to poisoned. It exits when [`Self::stop`] is
    /// called or the schedule is exhausted.
    pub fn start(registry: Arc<PageRegistry>, plan: InjectionPlan) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let paused = Arc::new(AtomicBool::new(false));
        let records = Arc::new(Mutex::new(Vec::new()));
        let stop_clone = Arc::clone(&stop);
        let paused_clone = Arc::clone(&paused);
        let records_clone = Arc::clone(&records);
        let handle = std::thread::Builder::new()
            .name("feir-fault-injector".into())
            .spawn(move || injector_loop(registry, plan, stop_clone, paused_clone, records_clone))
            .expect("failed to spawn fault injector thread");
        Self {
            stop,
            paused,
            records,
            handle: Some(handle),
        }
    }

    /// Pauses the error stream without tearing the injector down, so an
    /// experiment driver can gate injection around phases it wants fault-free
    /// (warmup, baseline measurement, teardown) while keeping the same
    /// injector — and its record stream — attached.
    ///
    /// While paused no new injections occur and the remaining schedule is
    /// shifted by the pause duration, so resuming does not release a burst
    /// of "overdue" errors. The pause takes effect at the injector thread's
    /// next wakeup (within about a millisecond): an injection already past
    /// its final pause check when `pause` returns may still land.
    pub fn pause(&self) {
        self.paused.store(true, Ordering::Release);
    }

    /// Resumes a paused error stream.
    pub fn resume(&self) {
        self.paused.store(false, Ordering::Release);
    }

    /// True while the stream is paused.
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::Acquire)
    }

    /// Drains the records accumulated so far without stopping the injector.
    ///
    /// Drained records are removed from the buffer, so the report returned by
    /// [`Self::stop`] only contains records produced after the last drain.
    pub fn drain(&self) -> Vec<InjectionRecord> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Stops the injector and returns the report of what was injected (since
    /// the last [`Self::drain`], if any).
    pub fn stop(mut self) -> InjectionReport {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        InjectionReport {
            records: std::mem::take(&mut *self.records.lock()),
        }
    }
}

impl Drop for FaultInjector {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Samples an exponential inter-arrival time with the given mean.
fn sample_exponential(rng: &mut StdRng, mean: Duration) -> Duration {
    let u: f64 = rng.random_range(0.0..1.0);
    // Inverse CDF; (1 - u) is in (0, 1] so the log is finite.
    let t = -mean.as_secs_f64() * (1.0 - u).ln();
    Duration::from_secs_f64(t)
}

/// Sleeps until `paused` clears (or `stop` is set) and returns how long the
/// pause lasted, so the caller can shift its schedule by that amount.
fn wait_while_paused(paused: &AtomicBool, stop: &AtomicBool) -> Duration {
    if !paused.load(Ordering::Acquire) {
        return Duration::ZERO;
    }
    let pause_start = Instant::now();
    while paused.load(Ordering::Acquire) && !stop.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(1));
    }
    pause_start.elapsed()
}

fn injector_loop(
    registry: Arc<PageRegistry>,
    plan: InjectionPlan,
    stop: Arc<AtomicBool>,
    paused: Arc<AtomicBool>,
    records: Arc<Mutex<Vec<InjectionRecord>>>,
) {
    let start = Instant::now();
    match plan {
        InjectionPlan::None => {
            // Nothing to do; park until asked to stop so drop() stays cheap.
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        InjectionPlan::Exponential { mtbe, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut next = sample_exponential(&mut rng, mtbe);
            while !stop.load(Ordering::Acquire) {
                next += wait_while_paused(&paused, &stop);
                let now = start.elapsed();
                if now < next {
                    let wait = (next - now).min(Duration::from_millis(1));
                    std::thread::sleep(wait);
                    continue;
                }
                // Last-moment check: a pause raised since the wait above must
                // defer this injection past the resume (the loop re-enters
                // wait_while_paused, which shifts the schedule).
                if paused.load(Ordering::Acquire) {
                    continue;
                }
                if let Some(record) = inject_random(&registry, &mut rng, now) {
                    records.lock().push(record);
                }
                next += sample_exponential(&mut rng, mtbe);
            }
        }
        InjectionPlan::Scheduled(schedule) => {
            let mut rng = StdRng::seed_from_u64(0xFE1C);
            // Accumulated pause time: the schedule is interpreted relative to
            // the un-paused clock.
            let mut shift = Duration::ZERO;
            for (at, flat) in schedule {
                while start.elapsed().saturating_sub(shift) < at {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    shift += wait_while_paused(&paused, &stop);
                    std::thread::sleep(Duration::from_micros(200));
                }
                // Last-moment check: a pause raised after the wait loop above
                // holds the due injection until the stream resumes.
                shift += wait_while_paused(&paused, &stop);
                if stop.load(Ordering::Acquire) {
                    return;
                }
                let now = start.elapsed();
                let record = if flat == usize::MAX {
                    inject_random(&registry, &mut rng, now)
                } else {
                    registry.flat_index_to_target(flat).map(|(vector, page)| {
                        let effective = registry.inject(vector, page);
                        InjectionRecord {
                            at: now,
                            vector,
                            page,
                            effective,
                        }
                    })
                };
                if let Some(r) = record {
                    records.lock().push(r);
                }
            }
            // Schedule exhausted: wait for stop so that timing is owned by the
            // experiment driver.
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

fn inject_random(
    registry: &PageRegistry,
    rng: &mut StdRng,
    now: Duration,
) -> Option<InjectionRecord> {
    let total = registry.total_pages();
    if total == 0 {
        return None;
    }
    let flat = rng.random_range(0..total);
    registry.flat_index_to_target(flat).map(|(vector, page)| {
        let effective = registry.inject(vector, page);
        InjectionRecord {
            at: now,
            vector,
            page,
            effective,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_sampling_has_requested_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean = Duration::from_millis(20);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| sample_exponential(&mut rng, mean).as_secs_f64())
            .collect();
        let avg = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (avg - 0.020).abs() < 0.002,
            "sample mean {avg} too far from 0.020"
        );
        assert!(samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn normalized_plan_computes_mtbe() {
        let plan = InjectionPlan::normalized(4.0, Duration::from_secs(8), 1);
        match plan {
            InjectionPlan::Exponential { mtbe, .. } => {
                assert!((mtbe.as_secs_f64() - 2.0).abs() < 1e-9)
            }
            _ => panic!("expected exponential plan"),
        }
        assert!(matches!(
            InjectionPlan::normalized(0.0, Duration::from_secs(1), 1),
            InjectionPlan::None
        ));
    }

    #[test]
    fn none_plan_injects_nothing() {
        let reg = Arc::new(PageRegistry::new());
        reg.register("x", 8);
        let injector = FaultInjector::start(Arc::clone(&reg), InjectionPlan::None);
        std::thread::sleep(Duration::from_millis(10));
        let report = injector.stop();
        assert!(report.records.is_empty());
        assert!(reg.all_healthy());
    }

    #[test]
    fn scheduled_plan_hits_requested_pages() {
        let reg = Arc::new(PageRegistry::new());
        let x = reg.register("x", 4);
        let g = reg.register("g", 4);
        let plan = InjectionPlan::Scheduled(vec![
            (Duration::from_millis(1), 2),
            (Duration::from_millis(2), 5),
        ]);
        let injector = FaultInjector::start(Arc::clone(&reg), plan);
        std::thread::sleep(Duration::from_millis(30));
        let report = injector.stop();
        assert_eq!(report.effective_count(), 2);
        assert_eq!(reg.poisoned_pages(x), vec![2]);
        assert_eq!(reg.poisoned_pages(g), vec![1]);
    }

    #[test]
    fn exponential_plan_injects_roughly_at_rate() {
        let reg = Arc::new(PageRegistry::new());
        reg.register("x", 64);
        let plan = InjectionPlan::Exponential {
            mtbe: Duration::from_millis(5),
            seed: 42,
        };
        let injector = FaultInjector::start(Arc::clone(&reg), plan);
        std::thread::sleep(Duration::from_millis(120));
        let report = injector.stop();
        // Expect on the order of 24 injections; accept a generous range to
        // keep the test robust on loaded CI machines.
        assert!(
            report.records.len() >= 5,
            "too few injections: {}",
            report.records.len()
        );
        assert_eq!(reg.injected_count(), report.effective_count());
    }

    #[test]
    fn paused_injector_emits_nothing_and_resumes_cleanly() {
        let reg = Arc::new(PageRegistry::new());
        reg.register("x", 64);
        let injector = FaultInjector::start(
            Arc::clone(&reg),
            InjectionPlan::Exponential {
                mtbe: Duration::from_millis(2),
                seed: 9,
            },
        );
        // Let some errors land, then pause and verify the stream stalls.
        std::thread::sleep(Duration::from_millis(30));
        injector.pause();
        assert!(injector.is_paused());
        std::thread::sleep(Duration::from_millis(5));
        let before_pause = injector.drain();
        std::thread::sleep(Duration::from_millis(30));
        let during_pause = injector.drain();
        assert!(
            during_pause.is_empty(),
            "paused injector still injected {} errors",
            during_pause.len()
        );
        // Resume and verify the stream picks back up without a burst.
        injector.resume();
        std::thread::sleep(Duration::from_millis(40));
        let report = injector.stop();
        assert!(
            !before_pause.is_empty() || !report.records.is_empty(),
            "injector never fired"
        );
    }

    #[test]
    fn drain_splits_the_record_stream_without_losing_records() {
        let reg = Arc::new(PageRegistry::new());
        let x = reg.register("x", 4);
        let plan = InjectionPlan::Scheduled(vec![
            (Duration::from_millis(1), 0),
            (Duration::from_millis(25), 2),
        ]);
        let injector = FaultInjector::start(Arc::clone(&reg), plan);
        std::thread::sleep(Duration::from_millis(12));
        let first = injector.drain();
        std::thread::sleep(Duration::from_millis(30));
        let report = injector.stop();
        assert_eq!(first.len() + report.records.len(), 2);
        assert_eq!(reg.poisoned_pages(x), vec![0, 2]);
    }

    #[test]
    fn injector_with_empty_registry_is_harmless() {
        let reg = Arc::new(PageRegistry::new());
        let injector = FaultInjector::start(
            Arc::clone(&reg),
            InjectionPlan::Exponential {
                mtbe: Duration::from_micros(100),
                seed: 3,
            },
        );
        std::thread::sleep(Duration::from_millis(5));
        let report = injector.stop();
        assert!(report.records.is_empty());
    }
}
