//! # feir-pagemem
//!
//! Software model of memory-page level Detected-and-Uncorrected Errors (DUE),
//! reproducing the error model of *"Exploiting Asynchrony from Exact Forward
//! Recovery for DUE in Iterative Solvers"* (Jaulmes et al., SC 2015).
//!
//! In the paper, a DUE is detected by the memory controller's ECC logic and
//! reported to the OS, which discards the affected 4 KiB page and delivers a
//! `SIGBUS` to the application when the page is accessed ("poisoned" pages are
//! only signalled lazily). The application's signal handler maps a fresh blank
//! page at the same virtual address and the solver-level recovery refills it.
//! The paper *injects* errors with `mprotect` from a separate thread at times
//! drawn from an exponential distribution.
//!
//! This crate substitutes the hardware/OS machinery with an equivalent,
//! portable software contract:
//!
//! * [`PageRegistry`] tracks a poison/lost/healthy state per page of every
//!   registered (dynamic) vector using atomics — the software analogue of the
//!   machine-check architecture registers plus the OS page table state.
//! * [`FaultInjector`] runs on its own thread and marks random pages poisoned
//!   at exponential inter-arrival times, exactly like the paper's injector
//!   (Section 5.3), or follows a deterministic schedule for the Figure-3 style
//!   single-error experiments.
//! * [`PagedVector`] wraps a `Vec<f64>` and exposes *guarded* page accesses:
//!   touching a poisoned page transitions it to *lost*, zeroes the data (the
//!   fresh blank page of the paper) and reports a [`PageFault`] to the caller,
//!   which is the moment the paper's SIGBUS handler would run.
//! * [`SkipMask`] is the per-page atomic bitmask of Section 3.3.2 used to
//!   propagate "this contribution was skipped" information between tasks so
//!   that reductions never accumulate garbage.
//!
//! The solver-visible behaviour — data vanishes at page granularity at random
//! instants and is only noticed on access — is identical to the paper's, which
//! is what the recovery techniques exercise.

#![warn(missing_docs)]

pub mod injector;
pub mod registry;
pub mod skipmask;
pub mod vector;

pub use injector::{FaultInjector, InjectionPlan, InjectionRecord, InjectionReport};
pub use registry::{AccessOutcome, PageRegistry, PageStatus, VectorId};
pub use skipmask::SkipMask;
pub use vector::{PageAccess, PageFault, PagedVector};

/// Number of `f64` values per protected page (4 KiB / 8 bytes), matching the
/// paper's failure granularity.
pub const PAGE_DOUBLES: usize = feir_sparse::PAGE_DOUBLES;
