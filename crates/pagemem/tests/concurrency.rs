//! Thread-stress tests of the lock-free page-state machinery: the
//! poison → lost → healthy transitions of [`PageRegistry`] and the bit
//! traffic of [`SkipMask`] hammered from many OS threads. No fault may ever
//! be double-counted or lost, exactly one thread may observe each SIGBUS,
//! and the counters must balance when the dust settles.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use feir_pagemem::{AccessOutcome, PageRegistry, PageStatus, SkipMask};

const THREADS: usize = 8;
const PAGES: usize = 64;
const ROUNDS: usize = 200;

#[test]
fn registry_hammered_from_many_threads_never_loses_a_fault() {
    let registry = Arc::new(PageRegistry::new());
    let vector = registry.register("stress", PAGES);
    let barrier = Arc::new(Barrier::new(THREADS));
    let discoveries = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = Arc::clone(&registry);
            let barrier = Arc::clone(&barrier);
            let discoveries = Arc::clone(&discoveries);
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    for p in 0..PAGES {
                        // Every thread races all three transitions on a
                        // rotating page schedule so injector, application and
                        // recovery interleave on the same pages.
                        let page = (p + t * 7 + round * 13) % PAGES;
                        registry.inject(vector, page);
                        if registry.on_access(vector, page) == AccessOutcome::FaultDiscovered {
                            discoveries.fetch_add(1, Ordering::Relaxed);
                            // Only the discovering thread repairs the page —
                            // as the paper's recovery tasks do.
                            registry.mark_recovered(vector, page);
                        }
                    }
                }
            });
        }
    });

    // Drain: materialise any still-poisoned page, then repair everything.
    for p in 0..PAGES {
        if registry.on_access(vector, p) != AccessOutcome::Ok {
            registry.mark_recovered(vector, p);
        }
    }
    assert!(registry.all_healthy());
    // Every injection that landed was discovered exactly once and repaired:
    // the registry's own counters must agree with the test's observation.
    assert_eq!(
        registry.discovered_count(),
        discoveries.load(Ordering::Relaxed)
    );
    assert_eq!(
        registry.discovered_count(),
        registry.injected_count(),
        "a poisoned page was lost or double-discovered"
    );
    assert!(registry.recovered_count() >= registry.discovered_count());
    assert!(
        registry.injected_count() > 0,
        "stress produced no injections"
    );
}

#[test]
fn exactly_one_discovery_per_injection_under_contention() {
    // Repeat the one-page race many times: each round injects once, then all
    // threads pounce; exactly one may win.
    let registry = Arc::new(PageRegistry::new());
    let vector = registry.register("one-page", 1);
    for round in 0..100 {
        assert!(registry.inject(vector, 0), "round {round}");
        let winners = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(THREADS));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let registry = Arc::clone(&registry);
                let winners = Arc::clone(&winners);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    if registry.on_access(vector, 0) == AccessOutcome::FaultDiscovered {
                        winners.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1, "round {round}");
        assert_eq!(registry.probe(vector, 0), PageStatus::Lost);
        registry.mark_recovered(vector, 0);
    }
    assert_eq!(registry.injected_count(), 100);
    assert_eq!(registry.discovered_count(), 100);
    assert_eq!(registry.recovered_count(), 100);
}

#[test]
fn skipmask_bits_are_independent_under_concurrent_traffic() {
    let mask = Arc::new(SkipMask::new(PAGES));
    let barrier = Arc::new(Barrier::new(THREADS));
    // Each thread owns one bit and toggles it over all pages many times;
    // bits of other threads must never be disturbed. Bit 63 stays set
    // throughout as a canary.
    for p in 0..PAGES {
        mask.set(p, 63);
    }
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let mask = Arc::clone(&mask);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let bit = t as u32;
                barrier.wait();
                for _ in 0..ROUNDS {
                    for p in 0..PAGES {
                        mask.set(p, bit);
                        assert!(mask.is_set(p, bit));
                        assert!(mask.any_of(p, 1 << bit));
                        mask.clear(p, bit);
                    }
                }
            });
        }
    });
    for p in 0..PAGES {
        assert_eq!(mask.raw(p), 1 << 63, "page {p} lost the canary bit");
    }
    assert_eq!(mask.pages_with_any(1 << 63).len(), PAGES);
    assert!(!mask.all_clear());
}

#[test]
fn registry_and_skipmask_cooperate_like_the_solver_phases() {
    // The resilient CG's contract: a task marks its output page's skip bit
    // when an input is invalid, and recovery clears it after repairing the
    // page. Run that protocol from many threads and require a consistent
    // final state: no page both healthy and skipped, no fault unaccounted.
    let registry = Arc::new(PageRegistry::new());
    let vector = registry.register("d", PAGES);
    let mask = Arc::new(SkipMask::new(PAGES));
    let bit = 2u32;
    let barrier = Arc::new(Barrier::new(THREADS));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = Arc::clone(&registry);
            let mask = Arc::clone(&mask);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    let page = (t * 31 + round * 17) % PAGES;
                    if t % 2 == 0 {
                        // Injector role.
                        registry.inject(vector, page);
                    } else {
                        // Solver-task role: touch, skip on loss; only the
                        // thread that received the SIGBUS repairs the page
                        // (recovering on AlreadyLost could race a fresh
                        // injection and absorb it without a discovery).
                        match registry.on_access(vector, page) {
                            AccessOutcome::Ok => {}
                            AccessOutcome::AlreadyLost => mask.set(page, bit),
                            AccessOutcome::FaultDiscovered => {
                                mask.set(page, bit);
                                // Recovery task: repair and clear the bit.
                                registry.mark_recovered(vector, page);
                                mask.clear(page, bit);
                            }
                        }
                    }
                }
            });
        }
    });

    // Settle: repair leftover poisoned/lost pages and clear stale skip bits
    // (an AlreadyLost observer may have re-marked a page after its recovery).
    for p in 0..PAGES {
        if registry.on_access(vector, p) != AccessOutcome::Ok {
            registry.mark_recovered(vector, p);
        }
        mask.clear(p, bit);
    }
    assert!(registry.all_healthy());
    assert!(mask.all_clear(), "a skip bit survived recovery");
    assert_eq!(registry.discovered_count(), registry.injected_count());
}
