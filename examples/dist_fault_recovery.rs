//! Distributed resilience end to end: the full recovery-policy matrix under
//! scripted DUEs, live per-rank injector streams, and a small fault campaign
//! — the Section 3.4 configuration of the paper on the simulated rank
//! substrate.
//!
//! ```text
//! cargo run --release --example dist_fault_recovery
//! ```

use std::time::Duration;

use feir::dist::{
    distributed_cg, distributed_pcg, distributed_resilient_cg, distributed_resilient_pcg,
    CampaignSolver, DistResilienceConfig, DistResilientCg, FaultCampaign, InjectionDriver,
    ProtectedVector, ScriptedFault,
};
use feir::pagemem::InjectionPlan;
use feir::recovery::RecoveryPolicy;
use feir::sparse::generators::{manufactured_rhs, poisson_2d};

fn main() {
    let a = poisson_2d(24); // 576 unknowns
    let (_, b) = manufactured_rhs(&a, 5);
    let ranks = 4;
    let config = |policy| {
        DistResilienceConfig::for_policy(policy)
            .with_page_doubles(32)
            .with_tolerance(1e-9)
            .with_max_iterations(20_000)
    };

    // ---- 1. Zero faults: the resilient solver is bitwise the plain one ----
    let plain = distributed_cg(&a, &b, ranks, 1e-9, 20_000);
    let clean = distributed_resilient_cg(&a, &b, ranks, config(RecoveryPolicy::Afeir));
    let bitwise = plain
        .x
        .iter()
        .zip(&clean.x)
        .all(|(u, v)| u.to_bits() == v.to_bits())
        && plain
            .residual_history
            .iter()
            .zip(&clean.residual_history)
            .all(|(u, v)| u.to_bits() == v.to_bits());
    println!(
        "zero-fault AFEIR vs distributed_cg on {ranks} ranks: {} iterations, bitwise identical: {bitwise}",
        clean.iterations
    );
    assert!(bitwise, "zero-fault path diverged from distributed_cg");

    // ---- 2. Scripted DUEs through the whole policy matrix -----------------
    // Page 0 of rank 2's iterate sits on a rank boundary: its stencil crosses
    // into rank 1, so FEIR/AFEIR must fetch remote entries to recover it.
    let faults = vec![
        ScriptedFault {
            iteration: 4,
            rank: 2,
            vector: ProtectedVector::X,
            page: 0,
        },
        ScriptedFault {
            iteration: 7,
            rank: 0,
            vector: ProtectedVector::D,
            page: 1,
        },
        ScriptedFault {
            iteration: 11,
            rank: 3,
            vector: ProtectedVector::G,
            page: 2,
        },
    ];
    println!("\npolicy matrix under 3 scripted DUEs (x@rank2, d@rank0, g@rank3):");
    println!("  policy   conv  iters  recovered  ignored  xrank_values  rollbacks  restarts");
    for policy in [
        RecoveryPolicy::Afeir,
        RecoveryPolicy::Feir,
        RecoveryPolicy::LossyRestart,
        RecoveryPolicy::Checkpoint { interval: 8 },
        RecoveryPolicy::Trivial,
    ] {
        let report = distributed_resilient_cg(
            &a,
            &b,
            ranks,
            config(policy).with_scripted_faults(faults.clone()),
        );
        println!(
            "  {:<7}  {:>4}  {:>5}  {:>9}  {:>7}  {:>12}  {:>9}  {:>8}",
            policy.name(),
            if report.converged { "yes" } else { "NO" },
            report.iterations,
            report.pages_recovered,
            report.pages_ignored,
            report.cross_rank_values,
            report.rollbacks,
            report.restarts,
        );
    }

    // ---- 2b. The PCG instantiation of the same engine ---------------------
    // Block-Jacobi with rank-local page blocks: zero faults is bitwise the
    // plain distributed PCG, and the same scripted DUEs (plus one on the
    // preconditioned residual z) recover exactly.
    let plain_pcg = distributed_pcg(&a, &b, ranks, 32, 1e-9, 20_000);
    let clean_pcg = distributed_resilient_pcg(&a, &b, ranks, config(RecoveryPolicy::Afeir));
    let pcg_bitwise = plain_pcg
        .x
        .iter()
        .zip(&clean_pcg.x)
        .all(|(u, v)| u.to_bits() == v.to_bits());
    let mut pcg_faults = faults.clone();
    pcg_faults.push(ScriptedFault {
        iteration: 5,
        rank: 1,
        vector: ProtectedVector::Z,
        page: 1,
    });
    let pcg_report = distributed_resilient_pcg(
        &a,
        &b,
        ranks,
        config(RecoveryPolicy::Afeir).with_scripted_faults(pcg_faults),
    );
    println!(
        "\ndistributed PCG: zero-fault bitwise identical to plain: {pcg_bitwise}; \
         under 4 DUEs: converged={}, {} iterations ({} vs plain), {} pages recovered",
        pcg_report.converged,
        pcg_report.iterations,
        plain_pcg.iterations,
        pcg_report.pages_recovered
    );
    assert!(pcg_bitwise, "zero-fault PCG diverged from distributed_pcg");
    assert!(
        pcg_report.converged,
        "resilient PCG must converge under DUEs"
    );

    // ---- 3. Live per-rank injector streams --------------------------------
    let solver = DistResilientCg::new(&a, &b, ranks, config(RecoveryPolicy::Afeir));
    let driver = InjectionDriver::start_uniform(
        solver.domains(),
        &InjectionPlan::Exponential {
            mtbe: Duration::from_millis(2),
            seed: 2015,
        },
    );
    let mut report = solver.solve();
    report.absorb_injection_reports(&driver.stop());
    println!(
        "\nAFEIR under live exponential streams (one per rank): converged={}, {} iterations",
        report.converged, report.iterations
    );
    println!("  rank  attempted  injected  discovered  recovered");
    for stats in &report.faults.per_rank {
        println!(
            "  {:>4}  {:>9}  {:>8}  {:>10}  {:>9}",
            stats.rank, stats.attempted, stats.injected, stats.discovered, stats.recovered
        );
    }
    assert!(report.converged, "AFEIR must converge under live injection");

    // ---- 4. A small fault campaign over both solver variants --------------
    let campaign = FaultCampaign {
        solvers: vec![CampaignSolver::Cg, CampaignSolver::Pcg],
        policies: vec![
            RecoveryPolicy::Afeir,
            RecoveryPolicy::Feir,
            RecoveryPolicy::LossyRestart,
        ],
        rank_counts: vec![2, 4],
        error_frequencies: vec![0.0, 2.0],
        page_doubles: 32,
        tolerance: 1e-8,
        max_iterations: 50_000,
        seed: 0xFE1A,
    };
    println!("\nfault campaign (solver x policy x ranks x frequency):");
    print!("{}", campaign.run(&a, &b).table());
}
