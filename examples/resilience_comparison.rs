//! Compares all five resilience methods of the paper on one matrix under the
//! same error rate — a miniature of the Figure-4 experiment.
//!
//! ```text
//! cargo run --release --example resilience_comparison [normalized_rate]
//! ```

use feir::prelude::*;

fn main() {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);

    let matrix = PaperMatrix::Cfd2;
    let a = matrix.build(0.35);
    let (_, b) = feir::sparse::generators::manufactured_rhs(&a, 11);
    let options = SolveOptions::default().with_tolerance(1e-8);
    println!(
        "matrix proxy {} ({} unknowns), normalized error rate {rate}",
        matrix.name(),
        a.rows()
    );

    // Ideal reference time (τ): the error rate is expressed as expected
    // errors per τ, exactly like the x-axis of Figure 4.
    let base = ResilienceConfig {
        page_doubles: 256,
        ..ResilienceConfig::default()
    };
    let ideal = measure_ideal(&a, &b, &base, &options);
    println!(
        "ideal CG: {} iterations in {:.3} s\n",
        ideal.iterations,
        ideal.elapsed.as_secs_f64()
    );
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>10} {:>9}",
        "method", "slowdown", "iters", "faults", "recovered", "converged"
    );

    for policy in [
        RecoveryPolicy::Afeir,
        RecoveryPolicy::Feir,
        RecoveryPolicy::LossyRestart,
        RecoveryPolicy::Checkpoint { interval: 1000 },
        RecoveryPolicy::Trivial,
    ] {
        let experiment = ExperimentConfig {
            resilience: ResilienceConfig {
                policy,
                ..base.clone()
            },
            normalized_error_rate: rate,
            seed: 0xFE1A,
            options: options.clone(),
        };
        let report = run_with_errors(&a, &b, &experiment, ideal.elapsed);
        println!(
            "{:<10} {:>9.2}% {:>8} {:>8} {:>10} {:>9}",
            policy.name(),
            report.slowdown_percent(ideal.elapsed).max(0.0),
            report.iterations,
            report.faults_discovered,
            report.pages_recovered,
            report.converged()
        );
    }
    println!(
        "\nExpected ordering at low rates (paper): AFEIR ≤ FEIR < Lossy << checkpoint, trivial."
    );
}
