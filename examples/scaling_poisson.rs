//! Distributed CG on the 27-point Poisson operator (the paper's scaling
//! workload) over simulated ranks, plus the analytic Figure-5 speedup model.
//!
//! ```text
//! cargo run --release --example scaling_poisson [grid]
//! ```

use feir::dist::{distributed_cg, ScalingModel};
use feir::prelude::*;

fn main() {
    let grid: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let a = feir::sparse::generators::poisson_3d_27pt(grid);
    let (_, b) = feir::sparse::generators::manufactured_rhs(&a, 3);
    println!("27-point Poisson, {grid}³ = {} unknowns", a.rows());

    let serial = cg(&a, &b, None, &SolveOptions::default().with_tolerance(1e-8));
    println!(
        "serial CG: {} iterations, residual {:.2e}",
        serial.iterations, serial.relative_residual
    );
    for ranks in [2usize, 4, 8] {
        let result = distributed_cg(&a, &b, ranks, 1e-8, 20_000);
        println!(
            "{ranks} simulated ranks: {} iterations, residual {:.2e}",
            result.iterations, result.relative_residual
        );
    }

    println!("\nFigure-5 style speedups from the calibrated scaling model (512³ problem):");
    let model = ScalingModel::default();
    for errors in [1usize, 2] {
        println!("  {errors} error(s) per run, 1024 cores:");
        for policy in [
            RecoveryPolicy::Afeir,
            RecoveryPolicy::Feir,
            RecoveryPolicy::LossyRestart,
            RecoveryPolicy::Checkpoint { interval: 1000 },
        ] {
            println!(
                "    {:<8} speedup {:.2}",
                policy.name(),
                model.speedup(policy, 1024, errors)
            );
        }
    }
}
