//! The other two Krylov methods the paper protects: BiCGStab and GMRES, with
//! the redundancy relations they conserve (Section 3.1) checked on the live
//! solver state.
//!
//! ```text
//! cargo run --release --example gmres_bicgstab
//! ```

use feir::prelude::*;
use feir::solvers::gmres::{gmres_preconditioned, GmresOptions};
use feir::solvers::relations;
use feir::solvers::JacobiPreconditioner;

fn main() {
    // A non-symmetric convection-diffusion style system.
    let n = 24;
    let mut coo = CooMatrix::new(n * n, n * n);
    let idx = |i: usize, j: usize| i * n + j;
    for i in 0..n {
        for j in 0..n {
            let row = idx(i, j);
            coo.push(row, row, 4.0).unwrap();
            if i > 0 {
                coo.push(row, idx(i - 1, j), -1.3).unwrap();
            }
            if i + 1 < n {
                coo.push(row, idx(i + 1, j), -0.7).unwrap();
            }
            if j > 0 {
                coo.push(row, idx(i, j - 1), -1.1).unwrap();
            }
            if j + 1 < n {
                coo.push(row, idx(i, j + 1), -0.9).unwrap();
            }
        }
    }
    let a = coo.to_csr();
    let (x_true, b) = feir::sparse::generators::manufactured_rhs(&a, 99);
    let options = SolveOptions::default().with_tolerance(1e-9);

    // BiCGStab.
    let result = bicgstab(&a, &b, None, &options);
    let err: f64 = result
        .x
        .iter()
        .zip(&x_true)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    println!(
        "BiCGStab: {} iterations, residual {:.2e}, ‖x − x*‖ = {:.2e}",
        result.iterations, result.relative_residual, err
    );

    // GMRES(30) with a Jacobi preconditioner.
    let jacobi = JacobiPreconditioner::new(&a);
    let result = gmres_preconditioned(
        &a,
        &b,
        None,
        &jacobi,
        &options,
        &GmresOptions { restart: 30 },
    );
    println!(
        "GMRES(30)+Jacobi: {} iterations, residual {:.2e}",
        result.iterations, result.relative_residual
    );

    // The redundancy relations the recovery would use, verified on live data.
    let mut g = vec![0.0; a.rows()];
    a.spmv(&result.x, &mut g);
    for (gi, bi) in g.iter_mut().zip(&b) {
        *gi = bi - *gi;
    }
    println!(
        "residual relation ‖(b − A·x) − g‖/‖b‖ violation: {:.2e}",
        relations::residual_relation_violation(&a, &b, &result.x, &g)
    );
    println!("\nRelation catalogue used to protect each solver:");
    for entry in relations::bicgstab_relations() {
        println!("  BiCGStab  {:<18} {}", entry.protects, entry.statement);
    }
    for entry in relations::gmres_relations() {
        println!("  GMRES     {:<18} {}", entry.protects, entry.statement);
    }
}
