//! The multi-process transport end to end: each rank a real OS process, a
//! Unix-domain-socket mesh speaking the versioned `feir-wire` frame
//! protocol — and the assembled solve **bitwise identical** to the
//! in-process channel backend at 2 and 4 ranks, for both CG and the
//! block-Jacobi PCG.
//!
//! ```text
//! cargo run --release --example dist_process
//! ```
//!
//! The example re-executes itself as the rank workers: the launcher spawns
//! `current_exe()` once per rank with the `FEIR_WORKER_*` environment set,
//! and each child detects that via [`spawned_as_worker`] and runs
//! [`worker_main`] instead of the demo.

use std::process::ExitCode;

use feir::dist::{
    distributed_cg, distributed_pcg, solve_with_processes, spawned_as_worker, worker_main,
    DistSolveResult, ProcessSpec, WorkerSolver,
};
use feir::sparse::generators::{manufactured_rhs, poisson_2d};

fn bitwise_identical(a: &DistSolveResult, b: &DistSolveResult) -> bool {
    a.iterations == b.iterations
        && a.x.len() == b.x.len()
        && a.x
            .iter()
            .zip(&b.x)
            .all(|(u, v)| u.to_bits() == v.to_bits())
        && a.residual_history.len() == b.residual_history.len()
        && a.residual_history
            .iter()
            .zip(&b.residual_history)
            .all(|(u, v)| u.to_bits() == v.to_bits())
}

fn main() -> ExitCode {
    // Child processes run the rank worker protocol, not the demo.
    if spawned_as_worker() {
        return worker_main();
    }

    let worker = std::env::current_exe().expect("cannot locate own executable");
    let grid = 16; // 256 unknowns
    let a = poisson_2d(grid);
    let (_, b) = manufactured_rhs(&a, 5);

    println!("multi-process transport vs in-process channels, poisson_2d({grid}):");
    println!(
        "  {:<22} {:>6} {:>7} {:>13} {:>9}",
        "scenario", "ranks", "iters", "rel_residual", "bitwise"
    );
    for ranks in [2usize, 4] {
        // CG: one process per rank over a Unix-socket mesh…
        let spec = ProcessSpec::cg(grid, ranks);
        let via_processes = solve_with_processes(&worker, &spec).expect("multi-process CG failed");
        // …against the same rank loop on in-process channels.
        let in_process = distributed_cg(&a, &b, ranks, spec.tolerance, spec.max_iterations);
        let identical = bitwise_identical(&via_processes, &in_process);
        println!(
            "  {:<22} {:>6} {:>7} {:>13.2e} {:>9}",
            "cg/processes",
            ranks,
            via_processes.iterations,
            via_processes.relative_residual,
            identical
        );
        assert!(identical, "CG over processes diverged from in-process");

        let spec = ProcessSpec {
            solver: WorkerSolver::Pcg,
            page_doubles: 2,
            ..ProcessSpec::cg(grid, ranks)
        };
        let via_processes = solve_with_processes(&worker, &spec).expect("multi-process PCG failed");
        let in_process = distributed_pcg(
            &a,
            &b,
            ranks,
            spec.page_doubles,
            spec.tolerance,
            spec.max_iterations,
        );
        let identical = bitwise_identical(&via_processes, &in_process);
        println!(
            "  {:<22} {:>6} {:>7} {:>13.2e} {:>9}",
            "pcg/processes",
            ranks,
            via_processes.iterations,
            via_processes.relative_residual,
            identical
        );
        assert!(identical, "PCG over processes diverged from in-process");
    }

    println!(
        "\nevery collective is the same rank-ordered fold on both backends, so the \
         histories match bit for bit — the transport changes the medium, not the math"
    );
    ExitCode::SUCCESS
}
