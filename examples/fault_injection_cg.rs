//! Demonstrates the page-level DUE fault model in isolation and shows one
//! exact forward recovery step by step (Table 1 of the paper).
//!
//! ```text
//! cargo run --release --example fault_injection_cg
//! ```

use std::sync::Arc;

use feir::pagemem::{PageAccess, PageRegistry, PagedVector};
use feir::recovery::BlockRecovery;
use feir::sparse::blocking::BlockPartition;

fn main() {
    // A small SPD system and its exact solution.
    let a = feir::sparse::generators::poisson_2d(32); // 1024 unknowns = 2 pages
    let n = a.rows();
    let (x_true, b) = feir::sparse::generators::manufactured_rhs(&a, 7);
    let mut g = vec![0.0; n];
    a.spmv(&x_true, &mut g);
    for (gi, bi) in g.iter_mut().zip(&b) {
        *gi = bi - *gi;
    }

    // Protect the iterate with the page registry.
    let registry = Arc::new(PageRegistry::new());
    let mut x = PagedVector::from_vec("x", x_true.clone(), Arc::clone(&registry));
    println!(
        "protected vector `x`: {} elements over {} pages",
        x.len(),
        x.num_pages()
    );

    // Simulate a DUE on page 1 of x (what the hardware scrubber would report).
    registry.inject(x.id(), 1);
    println!("injected a DUE into page 1 of x (poisoned, not yet observed)");

    // The solver touches the page: the fault is discovered, the page blanked.
    match x.access_page_mut(1) {
        PageAccess::Faulted(slice, fault) => {
            println!(
                "access observed the fault (first discovery = {}), page blanked: {:?}…",
                fault.first_discovery,
                &slice[..4]
            );
        }
        PageAccess::Clean(_) => unreachable!("the page was poisoned"),
    }

    // Exact forward recovery from the residual relation (Table 1, bottom row):
    //   A_ii x_i = b_i − g_i − Σ_{j≠i} A_ij x_j
    let partition = BlockPartition::pages(n);
    let recovery = BlockRecovery::new(&a, partition, true);
    let range = partition.range(1);
    let mut out = vec![0.0; range.len()];
    let ok = recovery.recover_iterate_rhs(&a, &b, &g, x.as_slice(), 1, &mut out);
    assert!(ok, "the diagonal block of an SPD matrix is always solvable");
    x.restore_page(1, &out);

    let max_err = x
        .as_slice()
        .iter()
        .zip(&x_true)
        .map(|(u, v)| (u - v).abs())
        .fold(0.0f64, f64::max);
    println!("page recovered exactly: max |x − x*| = {max_err:.3e}");
    println!("lost pages remaining: {:?}", x.lost_pages());
    assert!(max_err < 1e-9);
    assert!(x.lost_pages().is_empty());
}
