//! Quick start: protect a CG solve against page-level DUE with AFEIR.
//!
//! Builds a 2-D Poisson system, attaches a fault injector that poisons random
//! memory pages of the solver's dynamic vectors, and solves with the
//! asynchronous forward exact interpolation recovery. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use feir::prelude::*;

fn main() {
    // 1. Build a symmetric positive definite system (a 96×96 Poisson grid).
    let a = feir::sparse::generators::poisson_2d(96);
    let (x_true, b) = feir::sparse::generators::manufactured_rhs(&a, 2024);
    println!("system: {} unknowns, {} non-zeros", a.rows(), a.nnz());

    // 2. Configure the resilient solver: AFEIR recovery, page-sized blocks.
    let config = ResilienceConfig {
        policy: RecoveryPolicy::Afeir,
        ..ResilienceConfig::default()
    };
    let options = SolveOptions::default().with_tolerance(1e-10);
    let solver = ResilientCg::new(&a, &b, config);

    // 3. Attach a fault injector: one expected error every 20 ms, targeting
    //    the protected vectors uniformly (the paper's error model).
    let injector = FaultInjector::start(
        solver.registry(),
        InjectionPlan::Exponential {
            mtbe: Duration::from_millis(20),
            seed: 7,
        },
    );

    // 4. Solve. Lost pages are reconstructed exactly from the redundancy
    //    relations of Table 1, overlapped with the solver's reductions.
    let report = solver.solve(&options);
    let injection = injector.stop();

    // 5. Inspect the outcome.
    println!(
        "converged: {} in {} iterations ({:.3} s), final residual {:.2e}",
        report.converged(),
        report.iterations,
        report.elapsed.as_secs_f64(),
        report.relative_residual
    );
    println!(
        "errors injected: {}, discovered by the solver: {}, pages recovered exactly: {}",
        injection.effective_count(),
        report.faults_discovered,
        report.pages_recovered
    );
    let error: f64 = report
        .x
        .iter()
        .zip(&x_true)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    println!("‖x − x*‖₂ = {error:.3e}");
    assert!(report.converged());
}
