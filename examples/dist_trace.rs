//! Cross-rank tracing over the real multi-process transport: run a solve
//! with `FEIR_TRACE=spans`, collect every worker's trace stream through the
//! `TraceDump` wire frame, merge them on the shared clock origin and export
//! Chrome trace-event JSON (load the printed file in `chrome://tracing` or
//! Perfetto — one track per rank).
//!
//! ```text
//! cargo run --release --example dist_trace
//! ```
//!
//! Two scenarios:
//! 1. a clean 2-rank CG solve — the CI leg: validates the Chrome export is
//!    well-formed, has one track per rank and balanced B/E markers;
//! 2. a 4-rank FEIR solve over a chaos-injected mesh with a mid-solve
//!    kill/respawn — retransmit instants, a rejoin span and the elastic
//!    repair, all on the merged timeline.
//!
//! The example re-executes itself as the rank workers (the
//! [`spawned_as_worker`] / [`worker_main`] trick of `dist_process.rs`).
//! Absolute durations in this container are time-sliced over one core, so
//! per-rank totals are meaningful but cross-rank sums exceed wall clock.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use feir::dist::{
    spawn_workers_with, spawned_as_worker, worker_main, ChaosConfig, DistSolveResult, ProcessSpec,
    Transport, WorkerOptions,
};
use feir::recovery::RecoveryPolicy;
use feir::trace::{Phase, SolveTrace};

/// Structural validation of the hand-rolled Chrome trace-event JSON: brace
/// and bracket balance, matched B/E span markers, per-track presence.
fn validate_chrome_json(json: &str, ranks: usize) {
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced braces"
    );
    assert_eq!(
        json.matches('[').count(),
        json.matches(']').count(),
        "unbalanced brackets"
    );
    let opens = json.matches("\"ph\":\"B\"").count();
    let closes = json.matches("\"ph\":\"E\"").count();
    assert_eq!(opens, closes, "unbalanced B/E span markers");
    assert!(opens > 0, "no spans exported");
    for rank in 0..ranks {
        assert!(
            json.contains(&format!("\"tid\":{rank}")),
            "missing track for rank {rank}"
        );
    }
}

/// Checks each rank's stream: ordered events, the expected phases, and the
/// iteration total reconciling with the solve's wall clock (every rank's
/// iteration spans are wall-time intervals, so their per-rank sum cannot
/// exceed the launcher-observed wall time by more than timer slack).
fn check_tracks(trace: &SolveTrace, ranks: usize, wall: Duration) {
    assert_eq!(trace.ranks.len(), ranks, "one stream per rank");
    for rt in &trace.ranks {
        assert!(
            rt.events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns),
            "rank {} events out of order",
            rt.rank
        );
        let has = |p: Phase| rt.events.iter().any(|e| e.phase == p);
        assert!(has(Phase::Iteration), "rank {} has no iterations", rt.rank);
        assert!(has(Phase::Halo), "rank {} has no halo spans", rt.rank);
        assert!(
            has(Phase::Allreduce) || has(Phase::AllreducePost),
            "rank {} has no allreduce spans",
            rt.rank
        );
        let iteration_ns: u64 = rt
            .events
            .iter()
            .filter(|e| e.phase == Phase::Iteration)
            .map(|e| e.dur_ns)
            .sum();
        let wall_ns = wall.as_nanos() as u64;
        assert!(
            iteration_ns <= wall_ns + wall_ns / 10,
            "rank {} iteration total {iteration_ns}ns exceeds wall {wall_ns}ns by >10%",
            rt.rank
        );
    }
}

fn export(trace: &SolveTrace, label: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("feir_trace_{}_{label}.json", std::process::id()));
    std::fs::write(&path, trace.chrome_json()).expect("write chrome json");
    path
}

fn main() -> ExitCode {
    // Child processes run the rank worker protocol, not the demo.
    if spawned_as_worker() {
        return worker_main();
    }
    // Workers inherit the environment; the launcher itself only merges.
    std::env::set_var("FEIR_TRACE", "spans");

    let worker = std::env::current_exe().expect("cannot locate own executable");
    let fresh_dir =
        |tag: &str| std::env::temp_dir().join(format!("feir-trace-{}-{tag}", std::process::id()));

    // ---- scenario 1: clean 2-rank CG solve ---------------------------------
    let ranks = 2;
    let spec = ProcessSpec::cg(16, ranks);
    let started = Instant::now();
    let result: DistSolveResult = spawn_workers_with(
        &worker,
        &spec,
        &Transport::Uds {
            dir: fresh_dir("clean"),
        },
        &WorkerOptions::default(),
    )
    .expect("spawn failed")
    .join()
    .expect("clean solve failed");
    let wall = started.elapsed();
    assert!(result.converged);
    let trace = result
        .trace
        .as_ref()
        .expect("trace collected over the wire");
    check_tracks(trace, ranks, wall);
    let json = trace.chrome_json();
    validate_chrome_json(&json, ranks);
    let path = export(trace, "clean");
    println!(
        "clean 2-rank CG: {} iterations, wall {:?}",
        result.iterations, wall
    );
    println!("chrome trace ({} bytes): {}", json.len(), path.display());
    println!("{}", trace.summary().table());

    // ---- scenario 2: 4-rank FEIR under chaos + kill/respawn ----------------
    let ranks = 4;
    let spec = ProcessSpec::cg(16, ranks);
    let options = WorkerOptions {
        policy: Some(RecoveryPolicy::Feir),
        elastic: true,
        chaos: Some(
            ChaosConfig::parse("seed=7,drop=0.01,dup=0.005,delay=0.005,corrupt=0.005")
                .expect("chaos schedule parses"),
        ),
        retransmit_timeout: Some(Duration::from_millis(10)),
        // Dilate iterations so the kill lands mid-solve.
        spin: Some(Duration::from_millis(4)),
        ..WorkerOptions::default()
    };
    let started = Instant::now();
    let mut handles = spawn_workers_with(
        &worker,
        &spec,
        &Transport::Uds {
            dir: fresh_dir("chaos"),
        },
        &options,
    )
    .expect("elastic spawn failed");
    std::thread::sleep(Duration::from_millis(80));
    handles.kill_rank(2).expect("kill failed");
    std::thread::sleep(Duration::from_millis(30));
    handles.respawn_rank(2).expect("respawn failed");
    let result = handles.join().expect("rejoined solve failed");
    let wall = started.elapsed();
    assert!(result.converged);
    assert!(
        result.net.injected_faults > 0,
        "chaos injected no frame faults"
    );
    let trace = result
        .trace
        .as_ref()
        .expect("trace collected over the wire");
    assert_eq!(trace.ranks.len(), ranks, "one stream per rank after rejoin");
    let json = trace.chrome_json();
    validate_chrome_json(&json, ranks);
    let path = export(trace, "chaos");
    let summary = trace.summary();
    println!(
        "chaotic 4-rank FEIR + kill/respawn: {} iterations, wall {:?}, \
         frames {} retransmits {} faults {}",
        result.iterations,
        wall,
        result.net.data_frames,
        result.net.retransmits,
        result.net.injected_faults
    );
    println!("chrome trace ({} bytes): {}", json.len(), path.display());
    println!("{}", summary.table());
    if summary.rejoins == 0 {
        // The kill can race the solve's tail on fast machines; the solve
        // still validates, the rejoin span is just absent.
        println!("note: no rejoin span recorded (kill landed after convergence)");
    }

    println!("ok: traced solves converged, chrome exports validated");
    ExitCode::SUCCESS
}
