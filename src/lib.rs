//! # feir
//!
//! Umbrella crate for the FEIR project — a Rust reproduction of
//! *"Exploiting Asynchrony from Exact Forward Recovery for DUE in Iterative
//! Solvers"* (Jaulmes, Casas, Moretó, Ayguadé, Labarta, Valero — SC 2015).
//!
//! The paper protects Krylov iterative solvers (CG, BiCGStab, GMRES) against
//! Detected-and-Uncorrected memory Errors reported at memory-page granularity
//! by exploiting algebraic redundancy relations that already hold between the
//! solver's vectors, and shows that running the recovery tasks asynchronously
//! (overlapped with the solver's reductions) makes the protection nearly free.
//!
//! This crate re-exports the individual sub-crates:
//!
//! * [`sparse`] — CSR matrices, dense block factorizations, SPD generators,
//!   MatrixMarket I/O ([`feir_sparse`]);
//! * [`pagemem`] — the page-level DUE fault model and injector
//!   ([`feir_pagemem`]);
//! * [`runtime`] — the OmpSs-like task-dataflow runtime ([`feir_runtime`]);
//! * [`solvers`] — reference CG / PCG / BiCGStab / GMRES and the redundancy
//!   relation catalogue ([`feir_solvers`]);
//! * [`recovery`] — FEIR, AFEIR, Lossy Restart, checkpoint/rollback, trivial
//!   recovery and the resilient task-decomposed CG ([`feir_recovery`]);
//! * [`dist`] — the simulated distributed-memory substrate and the Figure-5
//!   scaling model ([`feir_dist`]);
//! * [`core`] — the experiment driver used by examples and benches
//!   ([`feir_core`]).
//!
//! ## Quick start
//!
//! ```
//! use feir::prelude::*;
//!
//! // Build a small SPD system.
//! let a = feir::sparse::generators::poisson_2d(16);
//! let (_, b) = feir::sparse::generators::manufactured_rhs(&a, 42);
//!
//! // Solve it with the asynchronous forward exact interpolation recovery.
//! let config = ResilienceConfig {
//!     policy: RecoveryPolicy::Afeir,
//!     page_doubles: 64,
//!     ..ResilienceConfig::default()
//! };
//! let report = ResilientCg::new(&a, &b, config).solve(&SolveOptions::default());
//! assert!(report.converged());
//! ```

pub use feir_core as core;
pub use feir_dist as dist;
pub use feir_pagemem as pagemem;
pub use feir_recovery as recovery;
pub use feir_runtime as runtime;
pub use feir_solvers as solvers;
pub use feir_sparse as sparse;
pub use feir_trace as trace;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use feir_core::{
        measure_ideal, run_overhead, run_with_errors, run_with_single_error, ExperimentConfig,
    };
    pub use feir_pagemem::{FaultInjector, InjectionPlan, PageRegistry};
    pub use feir_recovery::{
        RecoveryPolicy, ResilienceConfig, ResilientCg, ResilientCgBuilder, RunReport,
    };
    pub use feir_solvers::{bicgstab, cg, gmres, pcg, SolveOptions};
    pub use feir_sparse::{proxies::PaperMatrix, BlockJacobi, CooMatrix, CsrMatrix};
}
