//! Smoke test mirroring `examples/quickstart.rs` at test scale: build a
//! Poisson system, attach a fault injector, solve with AFEIR and require
//! convergence to the true solution. The injection schedule is fixed (three
//! early faults, then silence) so the test is insensitive to machine load;
//! CI additionally runs the real example binary with its exponential stream
//! (`cargo run --example quickstart`).

use std::time::Duration;

use feir::prelude::*;

#[test]
fn quickstart_flow_runs_to_convergence() {
    let a = feir::sparse::generators::poisson_2d(32);
    let (x_true, b) = feir::sparse::generators::manufactured_rhs(&a, 2024);

    let config = ResilienceConfig {
        policy: RecoveryPolicy::Afeir,
        page_doubles: 64,
        ..ResilienceConfig::default()
    };
    let options = SolveOptions::default().with_tolerance(1e-10);
    let solver = ResilientCg::new(&a, &b, config);

    let injector = FaultInjector::start(
        solver.registry(),
        InjectionPlan::Scheduled(vec![
            (Duration::from_millis(1), 0),
            (Duration::from_millis(2), 20),
            (Duration::from_millis(3), usize::MAX),
        ]),
    );
    let report = solver.solve(&options);
    let injection = injector.stop();

    assert!(report.converged(), "quickstart flow failed to converge");
    assert!(report.relative_residual <= 1e-9);
    // Every discovery stems from an injection that landed. (No relation is
    // asserted between discovered and recovered counts: a fault in the last
    // iteration may be blank-accepted, and skip propagation can recover
    // pages that never faulted in the registry.)
    assert!(injection.effective_count() >= report.faults_discovered);
    let error: f64 = report
        .x
        .iter()
        .zip(&x_true)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    assert!(error < 1e-6, "solution error {error}");
}
