//! Cross-crate integration tests: the full pipeline from matrix generation
//! through fault injection to resilient solve and experiment aggregation.

use std::time::Duration;

use feir::prelude::*;

fn system(seed: u64) -> (CsrMatrix, Vec<f64>) {
    let a = feir::sparse::generators::poisson_2d(20);
    let (_, b) = feir::sparse::generators::manufactured_rhs(&a, seed);
    (a, b)
}

fn config(policy: RecoveryPolicy) -> ResilienceConfig {
    ResilienceConfig {
        policy,
        page_doubles: 64,
        ..ResilienceConfig::default()
    }
}

#[test]
fn all_policies_converge_without_errors_and_match_ideal() {
    let (a, b) = system(1);
    let options = SolveOptions::default();
    let ideal = ResilientCg::new(&a, &b, config(RecoveryPolicy::Ideal)).solve(&options);
    assert!(ideal.converged());
    for policy in [
        RecoveryPolicy::Afeir,
        RecoveryPolicy::Feir,
        RecoveryPolicy::LossyRestart,
        RecoveryPolicy::Checkpoint { interval: 25 },
        RecoveryPolicy::Trivial,
    ] {
        let report = ResilientCg::new(&a, &b, config(policy)).solve(&options);
        assert!(report.converged(), "{policy:?}");
        assert!((report.iterations as i64 - ideal.iterations as i64).abs() <= 1);
    }
}

#[test]
fn feir_and_afeir_preserve_convergence_under_error_stream() {
    let (a, b) = system(2);
    let options = SolveOptions::default();
    let ideal = ResilientCg::new(&a, &b, config(RecoveryPolicy::Ideal)).solve(&options);
    for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
        let solver = ResilientCg::new(&a, &b, config(policy));
        let injector = FaultInjector::start(
            solver.registry(),
            InjectionPlan::Exponential {
                mtbe: Duration::from_millis(4),
                seed: 11,
            },
        );
        let report = solver.solve(&options);
        injector.stop();
        assert!(report.converged(), "{policy:?} under errors");
        assert!(report.relative_residual <= 1e-9);
        // Exact recovery: iteration count stays within a small factor of the
        // ideal run even with errors arriving every few milliseconds.
        assert!(
            report.iterations <= ideal.iterations * 2,
            "{policy:?}: {} vs ideal {}",
            report.iterations,
            ideal.iterations
        );
    }
}

#[test]
fn experiment_driver_reports_slowdowns() {
    let (a, b) = system(3);
    let options = SolveOptions::default().with_tolerance(1e-8);
    let resilience = config(RecoveryPolicy::Feir);
    let ideal = measure_ideal(&a, &b, &resilience, &options);
    let experiment = ExperimentConfig {
        resilience,
        normalized_error_rate: 3.0,
        seed: 5,
        options,
    };
    // Floor the normalisation window well above the ideal solve time: the
    // MTBE is window/rate, and a 5 ms window under parallel-test load lets
    // the injector outpace the slowed solve unboundedly.
    let report = run_with_errors(
        &a,
        &b,
        &experiment,
        ideal.elapsed.max(Duration::from_millis(50)),
    );
    assert!(report.converged());
    // The slowdown metric is well defined (can be negative only through noise,
    // which the caller clamps; here we only check it is finite).
    assert!(report.slowdown_percent(ideal.elapsed).is_finite());
}

#[test]
fn preconditioned_and_plain_runs_agree_on_the_solution() {
    let (a, b) = system(4);
    let options = SolveOptions::default();
    let plain = ResilientCg::new(&a, &b, config(RecoveryPolicy::Feir)).solve(&options);
    let pre = ResilientCg::new(
        &a,
        &b,
        ResilienceConfig {
            preconditioned: true,
            ..config(RecoveryPolicy::Feir)
        },
    )
    .solve(&options);
    assert!(plain.converged() && pre.converged());
    for (u, v) in plain.x.iter().zip(&pre.x) {
        assert!((u - v).abs() < 1e-6);
    }
}

#[test]
fn distributed_cg_agrees_with_resilient_shared_memory_cg() {
    let (a, b) = system(5);
    let options = SolveOptions::default();
    let shared = ResilientCg::new(&a, &b, config(RecoveryPolicy::Ideal)).solve(&options);
    let dist = feir::dist::distributed_cg(&a, &b, 4, 1e-10, 20_000);
    assert!(dist.relative_residual <= 1e-9);
    for (u, v) in shared.x.iter().zip(&dist.x) {
        assert!((u - v).abs() < 1e-6);
    }
}

#[test]
fn paper_matrix_proxies_solve_end_to_end() {
    // One matrix per convergence class, solved with AFEIR under a light error
    // stream — the smallest end-to-end slice of the Figure 4 sweep.
    let options = SolveOptions::default().with_tolerance(1e-6);
    for matrix in [PaperMatrix::Qa8fm, PaperMatrix::Cfd2, PaperMatrix::Ecology2] {
        let a = matrix.build(0.15);
        let (_, b) = feir::sparse::generators::manufactured_rhs(&a, 9);
        let solver = ResilientCg::new(
            &a,
            &b,
            ResilienceConfig {
                policy: RecoveryPolicy::Afeir,
                page_doubles: 128,
                ..ResilienceConfig::default()
            },
        );
        let injector = FaultInjector::start(
            solver.registry(),
            InjectionPlan::Exponential {
                mtbe: Duration::from_millis(10),
                seed: 21,
            },
        );
        let report = solver.solve(&options);
        injector.stop();
        assert!(report.converged(), "{} failed", matrix.name());
    }
}

#[test]
fn scaling_model_and_measured_overheads_are_consistent() {
    // The fixed task overhead ordering used by the Figure-5 model (AFEIR's
    // per-iteration overhead < FEIR's) must match what the shared-memory
    // implementation actually measures in a fault-free run.
    let (a, b) = system(6);
    let options = SolveOptions::default();
    let ideal = ResilientCg::new(&a, &b, config(RecoveryPolicy::Ideal)).solve(&options);
    let feir = ResilientCg::new(&a, &b, config(RecoveryPolicy::Feir)).solve(&options);
    let afeir = ResilientCg::new(&a, &b, config(RecoveryPolicy::Afeir)).solve(&options);
    assert!(ideal.converged() && feir.converged() && afeir.converged());
    // FEIR's critical-path recovery tasks cost at least as much wall time in
    // the recovery bucket as AFEIR's overlapped ones (per iteration they do
    // the same scans, but FEIR serialises them).
    assert!(feir.time.recovery >= Duration::ZERO);
    assert!(afeir.time.recovery >= Duration::ZERO);
    let model = feir::dist::ScalingModel::default();
    assert!(model.afeir_iteration_overhead < model.feir_iteration_overhead);
}
