//! Property-based tests of the paper's mathematical statements:
//!
//! * Theorem 1 — the Lossy (block-Jacobi) interpolation is contracting;
//! * Theorem 2 — for SPD `A` it diminishes the A-norm of the error;
//! * Theorem 3 — it *minimises* the A-norm of the error over all possible
//!   values of the lost block (the paper's own contribution);
//! * the exact FEIR recoveries reproduce the lost data to round-off, for every
//!   relation of Table 1, on randomly generated SPD systems.

use feir::recovery::lossy::{a_norm_error, lossy_interpolate_in_place};
use feir::recovery::BlockRecovery;
use feir::sparse::blocking::{BlockPartition, DiagonalBlocks};
use feir::sparse::generators::random_spd;
use feir::sparse::{vecops, CsrMatrix};
use proptest::prelude::*;

/// A strategy producing small random SPD systems plus a perturbed iterate.
fn spd_system() -> impl Strategy<Value = (CsrMatrix, Vec<f64>, Vec<f64>, usize, u64)> {
    (40usize..120, 2usize..5, 0u64..1000, 8usize..24).prop_map(|(n, nnz, seed, block)| {
        let a = random_spd(n, nnz, seed);
        let (x_exact, b) = feir::sparse::generators::manufactured_rhs(&a, seed.wrapping_add(17));
        (a, x_exact, b, block.min(n / 2).max(4), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn theorem2_lossy_interpolation_never_increases_a_norm_error(
        (a, x_exact, b, block_size, seed) in spd_system(),
        noise in 0.0f64..0.5,
        lost_block_selector in 0usize..64,
    ) {
        let n = a.rows();
        let partition = BlockPartition::new(n, block_size);
        let blocks = DiagonalBlocks::factorize(&a, partition, true).expect("SPD blocks factorize");
        // A partially converged iterate.
        let x: Vec<f64> = x_exact
            .iter()
            .enumerate()
            .map(|(i, v)| v + noise * (((i as u64).wrapping_mul(seed + 1) % 13) as f64 - 6.0) / 6.0)
            .collect();
        let lost = lost_block_selector % partition.num_blocks();
        let mut damaged = x.clone();
        for v in &mut damaged[partition.range(lost)] {
            *v = 0.0;
        }
        let before = a_norm_error(&a, &x_exact, &x);
        lossy_interpolate_in_place(&a, &b, &mut damaged, &blocks, &[lost]);
        let after = a_norm_error(&a, &x_exact, &damaged);
        prop_assert!(after <= before * (1.0 + 1e-10), "A-norm error grew: {after} > {before}");
    }

    #[test]
    fn theorem3_lossy_interpolation_beats_arbitrary_replacements(
        (a, x_exact, b, block_size, seed) in spd_system(),
        replacement_scale in -2.0f64..2.0,
    ) {
        let n = a.rows();
        let partition = BlockPartition::new(n, block_size);
        let blocks = DiagonalBlocks::factorize(&a, partition, true).expect("SPD blocks factorize");
        let x: Vec<f64> = x_exact.iter().map(|v| v * 0.95).collect();
        let lost = (seed as usize) % partition.num_blocks();
        let range = partition.range(lost);

        let mut interpolated = x.clone();
        for v in &mut interpolated[range.clone()] {
            *v = 0.0;
        }
        lossy_interpolate_in_place(&a, &b, &mut interpolated, &blocks, &[lost]);
        let err_interpolated = a_norm_error(&a, &x_exact, &interpolated);

        // An arbitrary alternative replacement for the lost block.
        let mut alternative = x.clone();
        for (k, v) in alternative[range].iter_mut().enumerate() {
            *v = replacement_scale * ((k % 7) as f64 - 3.0);
        }
        let err_alternative = a_norm_error(&a, &x_exact, &alternative);
        prop_assert!(
            err_interpolated <= err_alternative + 1e-9,
            "interpolation ({err_interpolated}) beaten by an arbitrary block ({err_alternative})"
        );
    }

    #[test]
    fn exact_matvec_recoveries_reproduce_lost_blocks(
        (a, d, _b, block_size, seed) in spd_system(),
    ) {
        let n = a.rows();
        let partition = BlockPartition::new(n, block_size);
        let recovery = BlockRecovery::new(&a, partition, true);
        let mut q = vec![0.0; n];
        a.spmv(&d, &mut q);
        let block = (seed as usize) % partition.num_blocks();
        let range = partition.range(block);

        // lhs recovery of q.
        let mut out = vec![0.0; range.len()];
        recovery.recover_matvec_lhs(&a, &d, block, &mut out);
        for (k, r) in range.clone().enumerate() {
            prop_assert!((out[k] - q[r]).abs() <= 1e-9 * (1.0 + q[r].abs()));
        }

        // rhs recovery of d (block content must not be read).
        let mut damaged = d.clone();
        for v in &mut damaged[range.clone()] {
            *v = f64::NAN;
        }
        let mut out = vec![0.0; range.len()];
        prop_assert!(recovery.recover_matvec_rhs(&a, &q, &damaged, block, &mut out));
        for (k, r) in range.enumerate() {
            prop_assert!((out[k] - d[r]).abs() <= 1e-7 * (1.0 + d[r].abs()));
        }
    }

    #[test]
    fn exact_iterate_recovery_reproduces_lost_block(
        (a, x, b, block_size, seed) in spd_system(),
    ) {
        let n = a.rows();
        let partition = BlockPartition::new(n, block_size);
        let recovery = BlockRecovery::new(&a, partition, true);
        let mut g = vec![0.0; n];
        a.spmv(&x, &mut g);
        for (gi, bi) in g.iter_mut().zip(&b) {
            *gi = bi - *gi;
        }
        let block = (seed as usize) % partition.num_blocks();
        let range = partition.range(block);
        let mut damaged = x.clone();
        for v in &mut damaged[range.clone()] {
            *v = 0.0;
        }
        let mut out = vec![0.0; range.len()];
        prop_assert!(recovery.recover_iterate_rhs(&a, &b, &g, &damaged, block, &mut out));
        for (k, r) in range.enumerate() {
            prop_assert!((out[k] - x[r]).abs() <= 1e-7 * (1.0 + x[r].abs()));
        }
    }

    #[test]
    fn cg_invariants_hold_for_random_spd_systems(
        (a, _x, b, _block, _seed) in spd_system(),
    ) {
        // The relations the recovery relies on (g = b − A·x and q = A·d) hold
        // at every CG iteration, on any SPD system.
        let n = a.rows();
        let mut x = vec![0.0; n];
        let mut g = b.clone();
        let mut d = vec![0.0; n];
        let mut q = vec![0.0; n];
        let mut eps_old = f64::INFINITY;
        for _ in 0..8 {
            let eps = vecops::norm2_squared(&g);
            if eps.sqrt() <= 1e-14 {
                break;
            }
            let beta = if eps_old.is_finite() { eps / eps_old } else { 0.0 };
            vecops::xpay(&g, beta, &mut d);
            a.spmv(&d, &mut q);
            let alpha = eps / vecops::dot(&q, &d);
            vecops::axpy(alpha, &d, &mut x);
            vecops::axpy(-alpha, &q, &mut g);
            eps_old = eps;
            prop_assert!(
                feir::solvers::relations::residual_relation_violation(&a, &b, &x, &g) < 1e-10
            );
            prop_assert!(feir::solvers::relations::matvec_relation_violation(&a, &d, &q) < 1e-10);
        }
    }
}
